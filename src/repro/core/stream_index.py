"""The stream index with locality-aware partitioning (§4.2, Fig. 8-9).

After the persistent store absorbs a stream batch, that batch's timeless
tuples are scattered through value lists all over the store.  The stream
index is the fast path back to them: per stream, a time-ordered sequence of
*index slices*, one per batch, whose entries map a store key to the *span*
(fat pointer: owner node + offset + length) of the value entries that batch
contributed.  A continuous query reading window batches [i, j] unions the
span lookups of slices i..j and dereferences each span with at most one
RDMA read — no key lookup, no scan of unrelated entries, search space
independent of the stored-data size.

The index also carries the only copy of timeless tuples' timestamps, at
batch granularity; the persistent store stays timestamp-free.

Locality-aware partitioning: rather than co-locating index with data (which
splits small continuous queries across nodes), the full index of a stream
is replicated to exactly the nodes where registered queries consume that
stream (*query* locality, not data locality).  Replicas are registered
on demand and dropped when the last interested query unregisters.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import deque
from itertools import chain, islice
from operator import itemgetter
from typing import Deque, Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import StoreError, StreamError
from repro.rdf.ids import (MAX_EID, _EID_SHIFT, _VID_SHIFT, Key, make_key,
                           split_key)
from repro.sim.cost import CostModel, LatencyMeter, MemoryModel
from repro.store.kvstore import ValueSpan

#: One index entry: the span plus the node whose shard holds it.
OwnedSpan = Tuple[int, ValueSpan]


class IndexSlice:
    """Stream-index entries contributed by one batch."""

    __slots__ = ("batch_no", "entries", "vertices")

    def __init__(self, batch_no: int):
        self.batch_no = batch_no
        self.entries: Dict[Key, List[OwnedSpan]] = {}
        #: (eid, d) -> vertices that gained an (eid, d) edge in this batch.
        self.vertices: Dict[Tuple[int, int], Set[int]] = {}

    def add_span(self, owner: int, span: ValueSpan) -> None:
        """Record one inserted span, coalescing contiguous appends."""
        spans = self.entries.setdefault(span.key, [])
        if spans:
            last_owner, last = spans[-1]
            if last_owner == owner and last.offset + last.length == span.offset:
                spans[-1] = (owner, ValueSpan(span.key, last.offset,
                                              last.length + span.length))
                self._note_vertex(span.key)
                return
        spans.append((owner, span))
        self._note_vertex(span.key)

    def add_batch_span(self, owner: int, span: ValueSpan, eid: int,
                       d: int, vid: int) -> None:
        """Record one key's whole batch contribution as a single span.

        The bulk injection path appends each key's values contiguously,
        so the per-entry coalescing of :meth:`add_span` has already
        happened; the caller supplies the split key fields it knows.
        """
        spans = self.entries.setdefault(span.key, [])
        if spans:
            last_owner, last = spans[-1]
            if last_owner == owner and last.offset + last.length == span.offset:
                spans[-1] = (owner, ValueSpan(span.key, last.offset,
                                              last.length + span.length))
                return
        spans.append((owner, span))
        self.vertices.setdefault((eid, d), set()).add(vid)

    def add_batch_spans(self, owner: int, spans: List[ValueSpan],
                        d: int) -> None:
        """Bulk :meth:`add_batch_span` over one injector half's spans
        (which all share direction ``d``), deriving the split-key fields
        from each span's packed key."""
        entries = self.entries
        vertices = self.vertices
        group_sets: Dict[int, Set[int]] = {}
        for span in spans:
            key = span.key
            known = entries.get(key)
            if known is None:
                entries[key] = [(owner, span)]
            else:
                last_owner, last = known[-1]
                if (last_owner == owner
                        and last.offset + last.length == span.offset):
                    known[-1] = (owner,
                                 ValueSpan(key, last.offset,
                                           last.length + span.length))
                    continue
                known.append((owner, span))
            eid = (key >> _EID_SHIFT) & MAX_EID
            members = group_sets.get(eid)
            if members is None:
                members = group_sets[eid] = \
                    vertices.setdefault((eid, d), set())
            members.add(key >> _VID_SHIFT)

    def _note_vertex(self, key: Key) -> None:
        vid, eid, d = split_key(key)
        self.vertices.setdefault((eid, d), set()).add(vid)

    @property
    def num_entries(self) -> int:
        return sum(len(spans) for spans in self.entries.values())

    def memory_bytes(self, model: MemoryModel) -> int:
        total = 0
        for spans in self.entries.values():
            total += model.index_key_bytes \
                + model.fat_pointer_bytes * len(spans)
        return total


#: Sort key for posting lists: the batch number of one posting.
_posting_batch = itemgetter(0)


class StreamIndex:
    """All live index slices of one stream (logical content; see registry
    for replication).

    Next to the time-ordered slice deque, the index keeps *skip postings*:
    per key (and per (eid, d) vertex group) a batch-ordered list of
    references into the slices that actually contain that key.  Lookups
    bisect the postings to the queried batch range instead of scanning
    every live slice, which only changes wall-clock time — the simulated
    charge stays one ``index_probe_ns`` per live slice in the range
    (counted by bisecting the sorted batch-number list), exactly as the
    linear scan charged.  Slices are immutable once appended, so postings
    alias the slice's own span lists and vertex sets.
    """

    def __init__(self, stream: str, cost: Optional[CostModel] = None,
                 memory: Optional[MemoryModel] = None):
        self.stream = stream
        self.cost = cost if cost is not None else CostModel()
        self.memory = memory if memory is not None else MemoryModel()
        self._slices: Deque[IndexSlice] = deque()
        #: Sorted batch numbers of the live slices (mirrors ``_slices``).
        self._batch_nos: List[int] = []
        #: key -> [(batch_no, spans)] for the slices containing the key.
        self._key_postings: Dict[Key, List[Tuple[int, List[OwnedSpan]]]] = {}
        #: (eid, d) -> [(batch_no, vertex set)] for slices with that group.
        self._vertex_postings: Dict[Tuple[int, int],
                                    List[Tuple[int, Set[int]]]] = {}
        #: Batches strictly below this were garbage-collected (time-scoped
        #: one-shot queries refuse to read reclaimed history).
        self.collected_before = 1

    # -- building ---------------------------------------------------------
    def append_slice(self, piece: IndexSlice,
                     meter: Optional[LatencyMeter] = None) -> None:
        if self._slices and piece.batch_no <= self._slices[-1].batch_no:
            raise StoreError(
                f"index slices must append in time order: #{piece.batch_no} "
                f"after #{self._slices[-1].batch_no}")
        if meter is not None:
            meter.charge(self.cost.insert_entry_ns, times=piece.num_entries,
                         category="indexing")
        self._slices.append(piece)
        self._batch_nos.append(piece.batch_no)
        for key, spans in piece.entries.items():
            self._key_postings.setdefault(key, []).append(
                (piece.batch_no, spans))
        for group, members in piece.vertices.items():
            self._vertex_postings.setdefault(group, []).append(
                (piece.batch_no, members))

    # -- reads ------------------------------------------------------------
    def _probes_in(self, first_batch: int, last_batch: int) -> int:
        """Live slices in [first, last]: the simulated probe count."""
        return bisect_right(self._batch_nos, last_batch) \
            - bisect_left(self._batch_nos, first_batch)

    def lookup_spans(self, key: Key, first_batch: int, last_batch: int,
                     meter: Optional[LatencyMeter] = None) -> List[OwnedSpan]:
        """Spans for ``key`` across batches [first, last] (inclusive)."""
        if meter is not None:
            probes = self._probes_in(first_batch, last_batch)
            if probes:
                meter.charge(self.cost.index_probe_ns, times=probes,
                             category="store")
        spans: List[OwnedSpan] = []
        postings = self._key_postings.get(key)
        if postings:
            lo = bisect_left(postings, first_batch, key=_posting_batch)
            hi = bisect_right(postings, last_batch, lo=lo, key=_posting_batch)
            for _, found in postings[lo:hi]:
                spans.extend(found)
        return spans

    def vertices(self, eid: int, d: int, first_batch: int, last_batch: int,
                 meter: Optional[LatencyMeter] = None) -> List[int]:
        """Distinct vertices touched by (eid, d) edges in the batch range."""
        out: List[int] = []
        seen: Set[int] = set()
        scanned = 0
        postings = self._vertex_postings.get((eid, d))
        if postings:
            lo = bisect_left(postings, first_batch, key=_posting_batch)
            hi = bisect_right(postings, last_batch, lo=lo, key=_posting_batch)
            for _, members in postings[lo:hi]:
                scanned += len(members)
                for vid in members:
                    if vid not in seen:
                        seen.add(vid)
                        out.append(vid)
        if meter is not None:
            probes = self._probes_in(first_batch, last_batch)
            if probes:
                meter.charge(self.cost.index_probe_ns, times=probes,
                             category="store")
                meter.charge(self.cost.scan_entry_ns, times=scanned,
                             category="store")
        return out

    def slices_in(self, first_batch: int,
                  last_batch: int) -> List[IndexSlice]:
        """The live slices with ``batch_no`` in [first, last], oldest first.

        Wall-clock-only helper for the columnar window view; simulated
        probe charges stay with the lookup that consumes the slices.
        """
        lo = bisect_left(self._batch_nos, first_batch)
        hi = bisect_right(self._batch_nos, last_batch)
        if lo == hi:
            return []
        return list(islice(self._slices, lo, hi))

    # -- GC ----------------------------------------------------------------
    def collect(self, before_batch_no: int,
                meter: Optional[LatencyMeter] = None) -> int:
        """Drop slices with batch_no < ``before_batch_no``; returns count."""
        if before_batch_no > self.collected_before:
            self.collected_before = before_batch_no
        freed = 0
        while self._slices and self._slices[0].batch_no < before_batch_no:
            piece = self._slices.popleft()
            del self._batch_nos[0]
            # Slices leave strictly from the left, so the collected batch is
            # the head posting of every key/group it contains.
            for key in piece.entries:
                postings = self._key_postings[key]
                del postings[0]
                if not postings:
                    del self._key_postings[key]
            for group in piece.vertices:
                postings = self._vertex_postings[group]
                del postings[0]
                if not postings:
                    del self._vertex_postings[group]
            if meter is not None:
                meter.charge(self.cost.gc_entry_ns, times=piece.num_entries,
                             category="gc")
            freed += 1
        return freed

    # -- stats ---------------------------------------------------------------
    @property
    def num_slices(self) -> int:
        return len(self._slices)

    @property
    def earliest_batch(self) -> Optional[int]:
        return self._slices[0].batch_no if self._slices else None

    def memory_bytes(self) -> int:
        """Bytes of one replica of this index."""
        return sum(piece.memory_bytes(self.memory) for piece in self._slices)


#: Sentinel distinguishing "never looked up" from a cached absent key.
_MISSING = object()

#: Shared read-only set served for cached-absent keys (never mutated).
_EMPTY_SET: set = set()


class _KeyColumn:
    """Flat window column of one key: values plus replayable geometry.

    ``values`` is the concatenation of the key's value-list entries across
    the window's batches (in batch order — exactly what the row path's
    span walk returns).  ``merged`` is the coalesced span list the row path
    would derive via ``_merge_spans``; lookups replay its simulated
    charges (one remote read per non-home span, one scan per entry)
    without re-reading the store.  ``batch_counts`` records how many
    values each contributing batch added, which is what lets the expired
    prefix be dropped without a rebuild.
    """

    __slots__ = ("values", "merged", "batch_counts", "_set", "_distinct")

    def __init__(self, values: List[int], merged: List[OwnedSpan],
                 batch_counts: List[Tuple[int, int]]):
        self.values = values
        self.merged = merged
        self.batch_counts = batch_counts
        #: Lazy membership set / duplicate-free verdict; both reset
        #: whenever ``values`` changes.
        self._set: Optional[set] = None
        self._distinct: Optional[bool] = None

    def value_set(self) -> set:
        """Memoized ``set(values)`` (charge-free executor bookkeeping,
        built once per column version instead of once per expansion)."""
        cached = self._set
        if cached is None:
            cached = self._set = set(self.values)
        return cached

    def is_distinct(self) -> bool:
        """True iff ``values`` has no duplicates (memoized bookkeeping —
        the executor's charge-free distinct check, computed once per
        column version instead of once per expansion)."""
        verdict = self._distinct
        if verdict is None:
            verdict = self._distinct = \
                len(self.value_set()) == len(self.values)
        return verdict


class ColumnarSlice:
    """Columnar view of one stream's window ``[first_batch, last_batch]``.

    Instead of walking postings and dereferencing spans per row, the view
    materializes each looked-up key as one contiguous value column (plus
    the merged-span geometry needed to replay the row path's simulated
    charges bit-for-bit) and each ``(eid, d)`` vertex group as one deduped
    start column.  Columns build lazily on first lookup and live across
    window closes: because ``[RANGE r STEP s]`` windows overlap heavily,
    :meth:`advance` reuses the previous close's columns, appending only
    the newly closed batches and dropping the expired prefix — the
    incremental window delta.  All of it is wall-clock bookkeeping; no
    simulated time is charged here (readers replay the exact row-path
    charges against the cached geometry).

    Columns are replaced, never mutated, on advance: callers may hold a
    returned list across a close without seeing it change underneath.

    Safe to cache across failures: value lists only ever append, recovery
    rebuilds a lost shard bit-identically from the durable log, and the
    engine never polls while degraded — so a cached column can never go
    stale relative to the store it was read from.
    """

    __slots__ = ("index", "store", "first_batch", "last_batch", "probes",
                 "_segments", "_columns", "_vertex_cols", "_member_lists",
                 "hits", "misses", "evictions", "delta_hits",
                 "delta_misses")

    def __init__(self, index: StreamIndex, store):
        self.index = index
        self.store = store
        self.first_batch = 0
        self.last_batch = -1
        #: Simulated probe count of the current range (recomputed by
        #: :meth:`advance`; readers charge ``index_probe_ns`` per probe).
        self.probes = 0
        self._segments: List[IndexSlice] = []
        #: key -> _KeyColumn, or None for a cached absent key.
        self._columns: Dict[Key, Optional[_KeyColumn]] = {}
        #: (eid, d) -> (deduped start column, scanned member count).
        self._vertex_cols: Dict[Tuple[int, int],
                                Tuple[List[int], int]] = {}
        #: (batch_no, eid, d) -> list(members): per-slice set-to-list
        #: conversions cached (slices are immutable once appended).
        self._member_lists: Dict[Tuple[int, int, int], List[int]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.delta_hits = 0
        self.delta_misses = 0

    # -- window sliding ----------------------------------------------------
    def advance(self, first_batch: int, last_batch: int) -> "ColumnarSlice":
        """Slide the view to ``[first_batch, last_batch]``.

        The common case (window sliding forward by ``s`` batches) keeps
        every cached column, dropping the expired prefix and appending the
        newly closed batches.  A range that shares no slice with the
        previous one resets the view and rebuilds lazily.
        """
        if first_batch == self.first_batch \
                and last_batch == self.last_batch:
            return self  # access-cache reuse: nothing moved
        fresh = self.index.slices_in(first_batch, last_batch)
        old = self._segments
        kept = 0
        if old and fresh:
            # Slices append strictly at the tail and expire strictly from
            # the head, so the overlap (if any) is old's suffix == fresh's
            # prefix, anchored at fresh's first slice.
            first_new = fresh[0]
            for i, piece in enumerate(old):
                if piece is first_new:
                    kept = len(old) - i
                    break
        if old and not kept:
            self._reset()
            self.delta_misses += 1
        elif old:
            self.delta_hits += 1
            for piece in old[:len(old) - kept]:
                self._drop_slice(piece)
        else:
            self.delta_misses += 1  # first materialization
        for piece in fresh[kept:]:
            self._extend_slice(piece)
        self._segments = fresh
        self.first_batch = first_batch
        self.last_batch = last_batch
        self.probes = self.index._probes_in(first_batch, last_batch)
        return self

    def _reset(self) -> None:
        self.evictions += len(self._columns) + len(self._vertex_cols)
        self._columns.clear()
        self._vertex_cols.clear()
        self._member_lists.clear()
        self._segments = []

    def _drop_slice(self, piece: IndexSlice) -> None:
        """Drop one expired batch (always the view's oldest) from every
        cached column it contributed to.

        Iterates the smaller side: slices usually hold far more keys than
        the view has cached columns (only probed keys are cached), so the
        walk goes over the cached columns with membership probes into the
        slice instead of the other way around.
        """
        columns = self._columns
        entries = piece.entries
        if len(entries) <= len(columns):
            keys = [key for key in entries if columns.get(key) is not None]
        else:
            keys = [key for key, col in columns.items() if col is not None
                    and key in entries]
        for key in keys:
            col = columns[key]
            counts = col.batch_counts
            if not counts or counts[0][0] != piece.batch_no:
                # Defensive: unexpected shape — rebuild lazily.
                del columns[key]
                self.evictions += 1
                continue
            drop = counts[0][1]
            del counts[0]
            if not counts:
                del columns[key]
                self.evictions += 1
                continue
            col.values = col.values[drop:]
            col._set = None
            col._distinct = None
            merged = col.merged
            while drop:
                owner, span = merged[0]
                if span.length <= drop:
                    drop -= span.length
                    del merged[0]
                else:
                    merged[0] = (owner, ValueSpan(span.key,
                                                  span.offset + drop,
                                                  span.length - drop))
                    drop = 0
        member_lists = self._member_lists
        vertex_cols = self._vertex_cols
        for group in piece.vertices:
            member_lists.pop((piece.batch_no,) + group, None)
            if vertex_cols.pop(group, None) is not None:
                self.evictions += 1

    def _extend_slice(self, piece: IndexSlice) -> None:
        """Append one newly closed batch to every cached column it touches
        (uncached keys build lazily on their next lookup).

        Like :meth:`_drop_slice`, walks the smaller of the slice's key set
        and the view's cached columns.
        """
        columns = self._columns
        entries = piece.entries
        shards = self.store.shards
        if len(entries) <= len(columns):
            items = [(key, columns[key], spans)
                     for key, spans in entries.items() if key in columns]
        else:
            items = [(key, col, entries[key])
                     for key, col in columns.items() if key in entries]
        for key, col, spans in items:
            if col is None:
                del columns[key]  # cached-absent key just gained spans
                continue
            added: List[int] = []
            count = 0
            merged = col.merged
            for owner, span in spans:
                added.extend(shards[owner].lookup_span(span))
                count += span.length
                if merged:
                    last_owner, last = merged[-1]
                    if (last_owner == owner
                            and last.offset + last.length == span.offset):
                        merged[-1] = (owner,
                                      ValueSpan(span.key, last.offset,
                                                last.length + span.length))
                        continue
                merged.append((owner, span))
            col.values = col.values + added  # copy-on-extend (shared refs)
            col._set = None
            col._distinct = None
            col.batch_counts.append((piece.batch_no, count))
        vertex_cols = self._vertex_cols
        for group in piece.vertices:
            # A new batch can only append unseen vertices, but the cached
            # column is shared with callers — rebuild lazily instead of
            # extending in place.
            if vertex_cols.pop(group, None) is not None:
                self.evictions += 1

    # -- columnar reads (charge-free; callers replay charges) --------------
    def key_column(self, key: Key) -> Optional[_KeyColumn]:
        """The window column of ``key``, or None if the key has no spans
        in the current range (the absence is cached too)."""
        col = self._columns.get(key, _MISSING)
        if col is not _MISSING:
            self.hits += 1
            return col
        self.misses += 1
        postings = self.index._key_postings.get(key)
        lo = hi = 0
        if postings:
            lo = bisect_left(postings, self.first_batch,
                             key=_posting_batch)
            hi = bisect_right(postings, self.last_batch, lo=lo,
                              key=_posting_batch)
        if lo == hi:
            self._columns[key] = None
            return None
        values: List[int] = []
        merged: List[OwnedSpan] = []
        batch_counts: List[Tuple[int, int]] = []
        shards = self.store.shards
        for batch_no, spans in postings[lo:hi]:
            count = 0
            for owner, span in spans:
                values.extend(shards[owner].lookup_span(span))
                count += span.length
                if merged:
                    last_owner, last = merged[-1]
                    if (last_owner == owner
                            and last.offset + last.length == span.offset):
                        merged[-1] = (owner,
                                      ValueSpan(span.key, last.offset,
                                                last.length + span.length))
                        continue
                merged.append((owner, span))
            batch_counts.append((batch_no, count))
        col = _KeyColumn(values, merged, batch_counts)
        self._columns[key] = col
        return col

    def vertices(self, eid: int, d: int) -> Tuple[List[int], int]:
        """Deduped start column of ``(eid, d)`` plus the scanned member
        count (the row path's simulated scan charge)."""
        group = (eid, d)
        cached = self._vertex_cols.get(group)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        postings = self.index._vertex_postings.get(group)
        lists: List[List[int]] = []
        scanned = 0
        if postings:
            lo = bisect_left(postings, self.first_batch,
                             key=_posting_batch)
            hi = bisect_right(postings, self.last_batch, lo=lo,
                              key=_posting_batch)
            member_lists = self._member_lists
            for batch_no, members in postings[lo:hi]:
                cache_key = (batch_no, eid, d)
                lst = member_lists.get(cache_key)
                if lst is None:
                    lst = member_lists[cache_key] = list(members)
                scanned += len(lst)
                lists.append(lst)
        # dict.fromkeys deduplicates in first-occurrence order over the
        # same per-slice iteration the row path uses — identical output.
        out = list(dict.fromkeys(chain.from_iterable(lists)))
        cached = (out, scanned)
        self._vertex_cols[group] = cached
        return cached

    def column_sets(self, starts: Iterable[Key], eid: int,
                    d: int) -> Dict[int, set]:
        """Per-start membership sets over the cached window columns.

        Charge-free bookkeeping for the executor's membership filter:
        each column's set is memoized on the column, so heavily
        overlapping windows rebuild nothing.  Starts whose keys are
        cached absent share one (read-only) empty set.
        """
        columns_get = self._columns.get
        eid_bits = (eid << _EID_SHIFT) | d
        sets: Dict[int, set] = {}
        for start in starts:
            col = columns_get((start << _VID_SHIFT) | eid_bits)
            sets[start] = _EMPTY_SET if col is None else col.value_set()
        return sets

    def columns_distinct(self, starts: Iterable[Key], eid: int,
                         d: int) -> bool:
        """True iff every start's cached window column is duplicate-free.

        Charge-free bookkeeping for the executor's distinct check: the
        per-column verdict is memoized on the column, so heavily
        overlapping windows answer from cache.  Starts whose keys were
        cached absent (empty lists) are trivially distinct.
        """
        columns_get = self._columns.get
        eid_bits = (eid << _EID_SHIFT) | d
        for start in starts:
            col = columns_get((start << _VID_SHIFT) | eid_bits)
            if col is not None and not col.is_distinct():
                return False
        return True

    @property
    def entries(self) -> int:
        """Cached columns (key + vertex-group), for the stats dashboard."""
        return len(self._columns) + len(self._vertex_cols)


class StreamIndexRegistry:
    """Replication control: which nodes hold which stream's index.

    The index content is shared (one logical :class:`StreamIndex` per
    stream); the registry tracks the replica set and prices accesses — a
    probe from a replica-holding node is local, anything else pays a remote
    read per probed slice.  Memory accounting multiplies the index size by
    the replica count, which is what Table 7 measures.
    """

    def __init__(self, cost: Optional[CostModel] = None):
        self.cost = cost if cost is not None else CostModel()
        self._indexes: Dict[str, StreamIndex] = {}
        self._replicas: Dict[str, Set[int]] = {}
        self._interest: Dict[str, Dict[int, int]] = {}

    # -- lifecycle --------------------------------------------------------
    def create_stream(self, stream: str,
                      memory: Optional[MemoryModel] = None) -> StreamIndex:
        if stream in self._indexes:
            raise StreamError(f"stream index already exists: {stream}")
        index = StreamIndex(stream, cost=self.cost, memory=memory)
        self._indexes[stream] = index
        self._replicas[stream] = set()
        self._interest[stream] = {}
        return index

    def index(self, stream: str) -> StreamIndex:
        found = self._indexes.get(stream)
        if found is None:
            raise StreamError(f"no stream index for: {stream}")
        return found

    @property
    def streams(self) -> List[str]:
        return sorted(self._indexes)

    # -- replication (query registration drives this) -------------------------
    def add_interest(self, stream: str, node_id: int) -> None:
        """A continuous query on ``node_id`` consumes ``stream``: ensure a
        replica there (created on demand, as §4.2 describes)."""
        interest = self._interest.get(stream)
        if interest is None:
            raise StreamError(f"no stream index for: {stream}")
        interest[node_id] = interest.get(node_id, 0) + 1
        self._replicas[stream].add(node_id)

    def drop_interest(self, stream: str, node_id: int) -> None:
        """A consuming query unregistered; drop the replica when unused."""
        interest = self._interest.get(stream)
        if interest is None or interest.get(node_id, 0) <= 0:
            raise StreamError(
                f"no registered interest of node {node_id} in {stream}")
        interest[node_id] -= 1
        if interest[node_id] == 0:
            del interest[node_id]
            self._replicas[stream].discard(node_id)

    def replicas(self, stream: str) -> Set[int]:
        return set(self._replicas.get(stream, ()))

    def is_local(self, stream: str, node_id: int) -> bool:
        return node_id in self._replicas.get(stream, ())

    # -- memory accounting -------------------------------------------------
    def memory_bytes(self, stream: str) -> int:
        """Total bytes across replicas of one stream's index."""
        replicas = max(1, len(self._replicas.get(stream, ())))
        return self.index(stream).memory_bytes() * replicas

    def total_memory_bytes(self) -> int:
        return sum(self.memory_bytes(s) for s in self._indexes)
