"""The stream index with locality-aware partitioning (§4.2, Fig. 8-9).

After the persistent store absorbs a stream batch, that batch's timeless
tuples are scattered through value lists all over the store.  The stream
index is the fast path back to them: per stream, a time-ordered sequence of
*index slices*, one per batch, whose entries map a store key to the *span*
(fat pointer: owner node + offset + length) of the value entries that batch
contributed.  A continuous query reading window batches [i, j] unions the
span lookups of slices i..j and dereferences each span with at most one
RDMA read — no key lookup, no scan of unrelated entries, search space
independent of the stored-data size.

The index also carries the only copy of timeless tuples' timestamps, at
batch granularity; the persistent store stays timestamp-free.

Locality-aware partitioning: rather than co-locating index with data (which
splits small continuous queries across nodes), the full index of a stream
is replicated to exactly the nodes where registered queries consume that
stream (*query* locality, not data locality).  Replicas are registered
on demand and dropped when the last interested query unregisters.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.errors import StoreError, StreamError
from repro.rdf.ids import Key, split_key
from repro.sim.cost import CostModel, LatencyMeter, MemoryModel
from repro.store.kvstore import ValueSpan

#: One index entry: the span plus the node whose shard holds it.
OwnedSpan = Tuple[int, ValueSpan]


class IndexSlice:
    """Stream-index entries contributed by one batch."""

    __slots__ = ("batch_no", "entries", "vertices")

    def __init__(self, batch_no: int):
        self.batch_no = batch_no
        self.entries: Dict[Key, List[OwnedSpan]] = {}
        #: (eid, d) -> vertices that gained an (eid, d) edge in this batch.
        self.vertices: Dict[Tuple[int, int], Set[int]] = {}

    def add_span(self, owner: int, span: ValueSpan) -> None:
        """Record one inserted span, coalescing contiguous appends."""
        spans = self.entries.setdefault(span.key, [])
        if spans:
            last_owner, last = spans[-1]
            if last_owner == owner and last.offset + last.length == span.offset:
                spans[-1] = (owner, ValueSpan(span.key, last.offset,
                                              last.length + span.length))
                self._note_vertex(span.key)
                return
        spans.append((owner, span))
        self._note_vertex(span.key)

    def _note_vertex(self, key: Key) -> None:
        vid, eid, d = split_key(key)
        self.vertices.setdefault((eid, d), set()).add(vid)

    @property
    def num_entries(self) -> int:
        return sum(len(spans) for spans in self.entries.values())

    def memory_bytes(self, model: MemoryModel) -> int:
        total = 0
        for spans in self.entries.values():
            total += model.index_key_bytes \
                + model.fat_pointer_bytes * len(spans)
        return total


class StreamIndex:
    """All live index slices of one stream (logical content; see registry
    for replication)."""

    def __init__(self, stream: str, cost: Optional[CostModel] = None,
                 memory: Optional[MemoryModel] = None):
        self.stream = stream
        self.cost = cost if cost is not None else CostModel()
        self.memory = memory if memory is not None else MemoryModel()
        self._slices: Deque[IndexSlice] = deque()
        #: Batches strictly below this were garbage-collected (time-scoped
        #: one-shot queries refuse to read reclaimed history).
        self.collected_before = 1

    # -- building ---------------------------------------------------------
    def append_slice(self, piece: IndexSlice,
                     meter: Optional[LatencyMeter] = None) -> None:
        if self._slices and piece.batch_no <= self._slices[-1].batch_no:
            raise StoreError(
                f"index slices must append in time order: #{piece.batch_no} "
                f"after #{self._slices[-1].batch_no}")
        if meter is not None:
            meter.charge(self.cost.insert_entry_ns, times=piece.num_entries,
                         category="indexing")
        self._slices.append(piece)

    # -- reads ------------------------------------------------------------
    def lookup_spans(self, key: Key, first_batch: int, last_batch: int,
                     meter: Optional[LatencyMeter] = None) -> List[OwnedSpan]:
        """Spans for ``key`` across batches [first, last] (inclusive)."""
        spans: List[OwnedSpan] = []
        for piece in self._slices:
            if piece.batch_no < first_batch:
                continue
            if piece.batch_no > last_batch:
                break
            if meter is not None:
                meter.charge(self.cost.index_probe_ns, category="store")
            found = piece.entries.get(key)
            if found:
                spans.extend(found)
        return spans

    def vertices(self, eid: int, d: int, first_batch: int, last_batch: int,
                 meter: Optional[LatencyMeter] = None) -> List[int]:
        """Distinct vertices touched by (eid, d) edges in the batch range."""
        out: List[int] = []
        seen: Set[int] = set()
        for piece in self._slices:
            if piece.batch_no < first_batch or piece.batch_no > last_batch:
                continue
            members = piece.vertices.get((eid, d), ())
            if meter is not None:
                meter.charge(self.cost.index_probe_ns, category="store")
                meter.charge(self.cost.scan_entry_ns, times=len(members),
                             category="store")
            for vid in members:
                if vid not in seen:
                    seen.add(vid)
                    out.append(vid)
        return out

    # -- GC ----------------------------------------------------------------
    def collect(self, before_batch_no: int,
                meter: Optional[LatencyMeter] = None) -> int:
        """Drop slices with batch_no < ``before_batch_no``; returns count."""
        if before_batch_no > self.collected_before:
            self.collected_before = before_batch_no
        freed = 0
        while self._slices and self._slices[0].batch_no < before_batch_no:
            piece = self._slices.popleft()
            if meter is not None:
                meter.charge(self.cost.gc_entry_ns, times=piece.num_entries,
                             category="gc")
            freed += 1
        return freed

    # -- stats ---------------------------------------------------------------
    @property
    def num_slices(self) -> int:
        return len(self._slices)

    @property
    def earliest_batch(self) -> Optional[int]:
        return self._slices[0].batch_no if self._slices else None

    def memory_bytes(self) -> int:
        """Bytes of one replica of this index."""
        return sum(piece.memory_bytes(self.memory) for piece in self._slices)


class StreamIndexRegistry:
    """Replication control: which nodes hold which stream's index.

    The index content is shared (one logical :class:`StreamIndex` per
    stream); the registry tracks the replica set and prices accesses — a
    probe from a replica-holding node is local, anything else pays a remote
    read per probed slice.  Memory accounting multiplies the index size by
    the replica count, which is what Table 7 measures.
    """

    def __init__(self, cost: Optional[CostModel] = None):
        self.cost = cost if cost is not None else CostModel()
        self._indexes: Dict[str, StreamIndex] = {}
        self._replicas: Dict[str, Set[int]] = {}
        self._interest: Dict[str, Dict[int, int]] = {}

    # -- lifecycle --------------------------------------------------------
    def create_stream(self, stream: str,
                      memory: Optional[MemoryModel] = None) -> StreamIndex:
        if stream in self._indexes:
            raise StreamError(f"stream index already exists: {stream}")
        index = StreamIndex(stream, cost=self.cost, memory=memory)
        self._indexes[stream] = index
        self._replicas[stream] = set()
        self._interest[stream] = {}
        return index

    def index(self, stream: str) -> StreamIndex:
        found = self._indexes.get(stream)
        if found is None:
            raise StreamError(f"no stream index for: {stream}")
        return found

    @property
    def streams(self) -> List[str]:
        return sorted(self._indexes)

    # -- replication (query registration drives this) -------------------------
    def add_interest(self, stream: str, node_id: int) -> None:
        """A continuous query on ``node_id`` consumes ``stream``: ensure a
        replica there (created on demand, as §4.2 describes)."""
        interest = self._interest.get(stream)
        if interest is None:
            raise StreamError(f"no stream index for: {stream}")
        interest[node_id] = interest.get(node_id, 0) + 1
        self._replicas[stream].add(node_id)

    def drop_interest(self, stream: str, node_id: int) -> None:
        """A consuming query unregistered; drop the replica when unused."""
        interest = self._interest.get(stream)
        if interest is None or interest.get(node_id, 0) <= 0:
            raise StreamError(
                f"no registered interest of node {node_id} in {stream}")
        interest[node_id] -= 1
        if interest[node_id] == 0:
            del interest[node_id]
            self._replicas[stream].discard(node_id)

    def replicas(self, stream: str) -> Set[int]:
        return set(self._replicas.get(stream, ()))

    def is_local(self, stream: str, node_id: int) -> bool:
        return node_id in self._replicas.get(stream, ())

    # -- memory accounting -------------------------------------------------
    def memory_bytes(self, stream: str) -> int:
        """Total bytes across replicas of one stream's index."""
        replicas = max(1, len(self._replicas.get(stream, ())))
        return self.index(stream).memory_bytes() * replicas

    def total_memory_bytes(self) -> int:
        return sum(self.memory_bytes(s) for s in self._indexes)
