"""The stream index with locality-aware partitioning (§4.2, Fig. 8-9).

After the persistent store absorbs a stream batch, that batch's timeless
tuples are scattered through value lists all over the store.  The stream
index is the fast path back to them: per stream, a time-ordered sequence of
*index slices*, one per batch, whose entries map a store key to the *span*
(fat pointer: owner node + offset + length) of the value entries that batch
contributed.  A continuous query reading window batches [i, j] unions the
span lookups of slices i..j and dereferences each span with at most one
RDMA read — no key lookup, no scan of unrelated entries, search space
independent of the stored-data size.

The index also carries the only copy of timeless tuples' timestamps, at
batch granularity; the persistent store stays timestamp-free.

Locality-aware partitioning: rather than co-locating index with data (which
splits small continuous queries across nodes), the full index of a stream
is replicated to exactly the nodes where registered queries consume that
stream (*query* locality, not data locality).  Replicas are registered
on demand and dropped when the last interested query unregisters.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import deque
from operator import itemgetter
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.errors import StoreError, StreamError
from repro.rdf.ids import Key, split_key
from repro.sim.cost import CostModel, LatencyMeter, MemoryModel
from repro.store.kvstore import ValueSpan

#: One index entry: the span plus the node whose shard holds it.
OwnedSpan = Tuple[int, ValueSpan]


class IndexSlice:
    """Stream-index entries contributed by one batch."""

    __slots__ = ("batch_no", "entries", "vertices")

    def __init__(self, batch_no: int):
        self.batch_no = batch_no
        self.entries: Dict[Key, List[OwnedSpan]] = {}
        #: (eid, d) -> vertices that gained an (eid, d) edge in this batch.
        self.vertices: Dict[Tuple[int, int], Set[int]] = {}

    def add_span(self, owner: int, span: ValueSpan) -> None:
        """Record one inserted span, coalescing contiguous appends."""
        spans = self.entries.setdefault(span.key, [])
        if spans:
            last_owner, last = spans[-1]
            if last_owner == owner and last.offset + last.length == span.offset:
                spans[-1] = (owner, ValueSpan(span.key, last.offset,
                                              last.length + span.length))
                self._note_vertex(span.key)
                return
        spans.append((owner, span))
        self._note_vertex(span.key)

    def _note_vertex(self, key: Key) -> None:
        vid, eid, d = split_key(key)
        self.vertices.setdefault((eid, d), set()).add(vid)

    @property
    def num_entries(self) -> int:
        return sum(len(spans) for spans in self.entries.values())

    def memory_bytes(self, model: MemoryModel) -> int:
        total = 0
        for spans in self.entries.values():
            total += model.index_key_bytes \
                + model.fat_pointer_bytes * len(spans)
        return total


#: Sort key for posting lists: the batch number of one posting.
_posting_batch = itemgetter(0)


class StreamIndex:
    """All live index slices of one stream (logical content; see registry
    for replication).

    Next to the time-ordered slice deque, the index keeps *skip postings*:
    per key (and per (eid, d) vertex group) a batch-ordered list of
    references into the slices that actually contain that key.  Lookups
    bisect the postings to the queried batch range instead of scanning
    every live slice, which only changes wall-clock time — the simulated
    charge stays one ``index_probe_ns`` per live slice in the range
    (counted by bisecting the sorted batch-number list), exactly as the
    linear scan charged.  Slices are immutable once appended, so postings
    alias the slice's own span lists and vertex sets.
    """

    def __init__(self, stream: str, cost: Optional[CostModel] = None,
                 memory: Optional[MemoryModel] = None):
        self.stream = stream
        self.cost = cost if cost is not None else CostModel()
        self.memory = memory if memory is not None else MemoryModel()
        self._slices: Deque[IndexSlice] = deque()
        #: Sorted batch numbers of the live slices (mirrors ``_slices``).
        self._batch_nos: List[int] = []
        #: key -> [(batch_no, spans)] for the slices containing the key.
        self._key_postings: Dict[Key, List[Tuple[int, List[OwnedSpan]]]] = {}
        #: (eid, d) -> [(batch_no, vertex set)] for slices with that group.
        self._vertex_postings: Dict[Tuple[int, int],
                                    List[Tuple[int, Set[int]]]] = {}
        #: Batches strictly below this were garbage-collected (time-scoped
        #: one-shot queries refuse to read reclaimed history).
        self.collected_before = 1

    # -- building ---------------------------------------------------------
    def append_slice(self, piece: IndexSlice,
                     meter: Optional[LatencyMeter] = None) -> None:
        if self._slices and piece.batch_no <= self._slices[-1].batch_no:
            raise StoreError(
                f"index slices must append in time order: #{piece.batch_no} "
                f"after #{self._slices[-1].batch_no}")
        if meter is not None:
            meter.charge(self.cost.insert_entry_ns, times=piece.num_entries,
                         category="indexing")
        self._slices.append(piece)
        self._batch_nos.append(piece.batch_no)
        for key, spans in piece.entries.items():
            self._key_postings.setdefault(key, []).append(
                (piece.batch_no, spans))
        for group, members in piece.vertices.items():
            self._vertex_postings.setdefault(group, []).append(
                (piece.batch_no, members))

    # -- reads ------------------------------------------------------------
    def _probes_in(self, first_batch: int, last_batch: int) -> int:
        """Live slices in [first, last]: the simulated probe count."""
        return bisect_right(self._batch_nos, last_batch) \
            - bisect_left(self._batch_nos, first_batch)

    def lookup_spans(self, key: Key, first_batch: int, last_batch: int,
                     meter: Optional[LatencyMeter] = None) -> List[OwnedSpan]:
        """Spans for ``key`` across batches [first, last] (inclusive)."""
        if meter is not None:
            probes = self._probes_in(first_batch, last_batch)
            if probes:
                meter.charge(self.cost.index_probe_ns, times=probes,
                             category="store")
        spans: List[OwnedSpan] = []
        postings = self._key_postings.get(key)
        if postings:
            lo = bisect_left(postings, first_batch, key=_posting_batch)
            hi = bisect_right(postings, last_batch, lo=lo, key=_posting_batch)
            for _, found in postings[lo:hi]:
                spans.extend(found)
        return spans

    def vertices(self, eid: int, d: int, first_batch: int, last_batch: int,
                 meter: Optional[LatencyMeter] = None) -> List[int]:
        """Distinct vertices touched by (eid, d) edges in the batch range."""
        out: List[int] = []
        seen: Set[int] = set()
        scanned = 0
        postings = self._vertex_postings.get((eid, d))
        if postings:
            lo = bisect_left(postings, first_batch, key=_posting_batch)
            hi = bisect_right(postings, last_batch, lo=lo, key=_posting_batch)
            for _, members in postings[lo:hi]:
                scanned += len(members)
                for vid in members:
                    if vid not in seen:
                        seen.add(vid)
                        out.append(vid)
        if meter is not None:
            probes = self._probes_in(first_batch, last_batch)
            if probes:
                meter.charge(self.cost.index_probe_ns, times=probes,
                             category="store")
                meter.charge(self.cost.scan_entry_ns, times=scanned,
                             category="store")
        return out

    # -- GC ----------------------------------------------------------------
    def collect(self, before_batch_no: int,
                meter: Optional[LatencyMeter] = None) -> int:
        """Drop slices with batch_no < ``before_batch_no``; returns count."""
        if before_batch_no > self.collected_before:
            self.collected_before = before_batch_no
        freed = 0
        while self._slices and self._slices[0].batch_no < before_batch_no:
            piece = self._slices.popleft()
            del self._batch_nos[0]
            # Slices leave strictly from the left, so the collected batch is
            # the head posting of every key/group it contains.
            for key in piece.entries:
                postings = self._key_postings[key]
                del postings[0]
                if not postings:
                    del self._key_postings[key]
            for group in piece.vertices:
                postings = self._vertex_postings[group]
                del postings[0]
                if not postings:
                    del self._vertex_postings[group]
            if meter is not None:
                meter.charge(self.cost.gc_entry_ns, times=piece.num_entries,
                             category="gc")
            freed += 1
        return freed

    # -- stats ---------------------------------------------------------------
    @property
    def num_slices(self) -> int:
        return len(self._slices)

    @property
    def earliest_batch(self) -> Optional[int]:
        return self._slices[0].batch_no if self._slices else None

    def memory_bytes(self) -> int:
        """Bytes of one replica of this index."""
        return sum(piece.memory_bytes(self.memory) for piece in self._slices)


class StreamIndexRegistry:
    """Replication control: which nodes hold which stream's index.

    The index content is shared (one logical :class:`StreamIndex` per
    stream); the registry tracks the replica set and prices accesses — a
    probe from a replica-holding node is local, anything else pays a remote
    read per probed slice.  Memory accounting multiplies the index size by
    the replica count, which is what Table 7 measures.
    """

    def __init__(self, cost: Optional[CostModel] = None):
        self.cost = cost if cost is not None else CostModel()
        self._indexes: Dict[str, StreamIndex] = {}
        self._replicas: Dict[str, Set[int]] = {}
        self._interest: Dict[str, Dict[int, int]] = {}

    # -- lifecycle --------------------------------------------------------
    def create_stream(self, stream: str,
                      memory: Optional[MemoryModel] = None) -> StreamIndex:
        if stream in self._indexes:
            raise StreamError(f"stream index already exists: {stream}")
        index = StreamIndex(stream, cost=self.cost, memory=memory)
        self._indexes[stream] = index
        self._replicas[stream] = set()
        self._interest[stream] = {}
        return index

    def index(self, stream: str) -> StreamIndex:
        found = self._indexes.get(stream)
        if found is None:
            raise StreamError(f"no stream index for: {stream}")
        return found

    @property
    def streams(self) -> List[str]:
        return sorted(self._indexes)

    # -- replication (query registration drives this) -------------------------
    def add_interest(self, stream: str, node_id: int) -> None:
        """A continuous query on ``node_id`` consumes ``stream``: ensure a
        replica there (created on demand, as §4.2 describes)."""
        interest = self._interest.get(stream)
        if interest is None:
            raise StreamError(f"no stream index for: {stream}")
        interest[node_id] = interest.get(node_id, 0) + 1
        self._replicas[stream].add(node_id)

    def drop_interest(self, stream: str, node_id: int) -> None:
        """A consuming query unregistered; drop the replica when unused."""
        interest = self._interest.get(stream)
        if interest is None or interest.get(node_id, 0) <= 0:
            raise StreamError(
                f"no registered interest of node {node_id} in {stream}")
        interest[node_id] -= 1
        if interest[node_id] == 0:
            del interest[node_id]
            self._replicas[stream].discard(node_id)

    def replicas(self, stream: str) -> Set[int]:
        return set(self._replicas.get(stream, ()))

    def is_local(self, stream: str, node_id: int) -> bool:
        return node_id in self._replicas.get(stream, ())

    # -- memory accounting -------------------------------------------------
    def memory_bytes(self, stream: str) -> int:
        """Total bytes across replicas of one stream's index."""
        replicas = max(1, len(self._replicas.get(stream, ())))
        return self.index(stream).memory_bytes() * replicas

    def total_memory_bytes(self) -> int:
        return sum(self.memory_bytes(s) for s in self._indexes)
