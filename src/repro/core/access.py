"""Store accesses used by continuous queries.

A continuous query mixes patterns over stream windows with patterns over
stored data.  The executor stays source-agnostic: registration builds one
:class:`WindowAccess` per consumed stream (dispatching timeless predicates
to the stream index + persistent store and timing predicates to the
transient store) and a snapshot-bounded
:class:`~repro.store.distributed.PersistentAccess` for stored patterns.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.stream_index import StreamIndexRegistry
from repro.core.transient import TransientStore
from repro.rdf.ids import DIR_IN, DIR_OUT, make_key
from repro.rdf.string_server import StringServer
from repro.sim.cluster import Cluster
from repro.sim.cost import LatencyMeter
from repro.store.distributed import DistributedStore
from repro.store.kvstore import ValueSpan
from repro.streams.stream import StreamSchema

#: Approximate wire size of one remote index/transient probe result.
_PROBE_BYTES = 64


def _merge_spans(spans):
    """Coalesce contiguous same-owner spans of the same key.

    The injector appends batch data to each key's value list in batch
    order, so spans from consecutive window batches line up end-to-start.
    """
    merged = []
    for owner, span in spans:
        if merged:
            last_owner, last = merged[-1]
            if (last_owner == owner and last.key == span.key
                    and last.offset + last.length == span.offset):
                merged[-1] = (owner, ValueSpan(span.key, last.offset,
                                               last.length + span.length))
                continue
        merged.append((owner, span))
    return merged


class WindowAccess:
    """`StoreAccess` over one stream's window, as seen from one node.

    Parameters
    ----------
    stream_schema:
        Classifies predicates into timing (transient store) and timeless
        (stream index into the persistent store).
    first_batch / last_batch:
        Inclusive batch range of the window being read.
    transients:
        Per-node transient stores of this stream.
    home_node:
        The node executing the query (prices remote accesses).
    """

    def __init__(self, cluster: Cluster, store: DistributedStore,
                 strings: StringServer, registry: StreamIndexRegistry,
                 stream_schema: StreamSchema,
                 transients: List[TransientStore],
                 first_batch: int, last_batch: int, home_node: int = 0,
                 force_local_index: bool = False):
        self.cluster = cluster
        self.store = store
        self.strings = strings
        self.registry = registry
        self.schema = stream_schema
        self.transients = transients
        self.first_batch = first_batch
        self.last_batch = last_batch
        self.home_node = home_node
        # Registered queries have the index replicated to their node;
        # distributed branches get on-demand replicas (§4.2).
        self._index_local = force_local_index or \
            registry.is_local(stream_schema.name, home_node)
        #: eid -> is-timing memo (the schema and string table never remap
        #: an encoded predicate, so the classification is stable).
        self._timing_eids: Dict[int, bool] = {}

    def _is_timing(self, eid: int) -> bool:
        timing = self._timing_eids.get(eid)
        if timing is None:
            timing = self.schema.is_timing(self.strings.predicate_name(eid))
            self._timing_eids[eid] = timing
        return timing

    # -- StoreAccess protocol ------------------------------------------------
    def resolve_entity(self, name: str) -> Optional[int]:
        return self.strings.lookup_entity(name)

    def resolve_predicate(self, name: str) -> Optional[int]:
        return self.strings.lookup_predicate(name)

    def neighbors(self, vid: int, eid: int, d: int,
                  meter: LatencyMeter) -> List[int]:
        if self._is_timing(eid):
            return self._timing_neighbors(vid, eid, d, meter)
        return self._timeless_neighbors(vid, eid, d, meter)

    def index_vertices(self, eid: int, d: int,
                       meter: LatencyMeter) -> List[int]:
        if self._is_timing(eid):
            out: List[int] = []
            seen = set()
            for node_id, transient in enumerate(self.transients):
                if node_id != self.home_node:
                    self.cluster.fabric.remote_read(meter, _PROBE_BYTES,
                                                    category="network")
                for vertex in transient.vertices(
                        eid, d, self.first_batch, self.last_batch,
                        meter=meter):
                    if vertex not in seen:
                        seen.add(vertex)
                        out.append(vertex)
            return out
        self._charge_index_locality(meter)
        return self.registry.index(self.schema.name).vertices(
            eid, d, self.first_batch, self.last_batch, meter=meter)

    def index_vertices_local(self, eid: int, d: int, node_id: int,
                             meter: LatencyMeter) -> List[int]:
        """The window's start vertices owned by ``node_id``.

        Fork-join/migrate branches partition the start set by owner; the
        stream index is consulted once (it is replicated where needed).
        """
        if self._is_timing(eid):
            return self.transients[node_id].vertices(
                eid, d, self.first_batch, self.last_batch, meter=meter)
        vertices = self.registry.index(self.schema.name).vertices(
            eid, d, self.first_batch, self.last_batch, meter=meter)
        return [vid for vid in vertices
                if self.cluster.owner_of(vid) == node_id]

    # -- paths -----------------------------------------------------------------
    def _timeless_neighbors(self, vid: int, eid: int, d: int,
                            meter: LatencyMeter) -> List[int]:
        """Stream-index fast path: span lookups, then direct value reads.

        Spans of one key from consecutive batches are contiguous in the
        key's value list (injection appends in batch order), so the whole
        window usually collapses to a single fat pointer — one RDMA read
        per key, the paper's §5 claim.
        """
        self._charge_index_locality(meter)
        index = self.registry.index(self.schema.name)
        spans = index.lookup_spans(make_key(vid, eid, d), self.first_batch,
                                   self.last_batch, meter=meter)
        found: List[int] = []
        for owner, span in _merge_spans(spans):
            found.extend(self.store.span_from(self.home_node, span, owner,
                                              meter))
        return found

    def _timing_neighbors(self, vid: int, eid: int, d: int,
                          meter: LatencyMeter) -> List[int]:
        """Transient-store path: the data lives on the vertex's owner node."""
        owner = self.cluster.owner_of(vid)
        if owner != self.home_node:
            self.cluster.fabric.remote_read(meter, _PROBE_BYTES,
                                            category="network")
        return self.transients[owner].lookup(
            vid, eid, d, self.first_batch, self.last_batch, meter=meter)

    def _charge_index_locality(self, meter: LatencyMeter) -> None:
        """A non-replicated index costs one extra remote read per access —
        exactly the read that locality-aware replication removes (§4.2)."""
        if not self._index_local:
            self.cluster.fabric.remote_read(meter, _PROBE_BYTES,
                                            category="network")
