"""Store accesses used by continuous queries.

A continuous query mixes patterns over stream windows with patterns over
stored data.  The executor stays source-agnostic: registration builds one
:class:`WindowAccess` per consumed stream (dispatching timeless predicates
to the stream index + persistent store and timing predicates to the
transient store) and a snapshot-bounded
:class:`~repro.store.distributed.PersistentAccess` for stored patterns.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

from repro.core.stream_index import (_EMPTY_SET, _MISSING, ColumnarSlice,
                                     StreamIndexRegistry)
from repro.core.transient import TransientStore
from repro.rdf.ids import (DIR_IN, DIR_OUT, _EID_SHIFT, _VID_SHIFT,
                           make_key)
from repro.rdf.string_server import StringServer
from repro.sim.cluster import Cluster
from repro.sim.cost import LatencyMeter
from repro.store.distributed import DistributedStore
from repro.store.kvstore import ValueSpan
from repro.streams.stream import StreamSchema

#: Approximate wire size of one remote index/transient probe result.
_PROBE_BYTES = 64


def _merge_spans(spans):
    """Coalesce contiguous same-owner spans of the same key.

    The injector appends batch data to each key's value list in batch
    order, so spans from consecutive window batches line up end-to-start.
    """
    merged = []
    for owner, span in spans:
        if merged:
            last_owner, last = merged[-1]
            if (last_owner == owner and last.key == span.key
                    and last.offset + last.length == span.offset):
                merged[-1] = (owner, ValueSpan(span.key, last.offset,
                                               last.length + span.length))
                continue
        merged.append((owner, span))
    return merged


class WindowAccess:
    """`StoreAccess` over one stream's window, as seen from one node.

    Parameters
    ----------
    stream_schema:
        Classifies predicates into timing (transient store) and timeless
        (stream index into the persistent store).
    first_batch / last_batch:
        Inclusive batch range of the window being read.
    transients:
        Per-node transient stores of this stream.
    home_node:
        The node executing the query (prices remote accesses).
    columnar:
        Optional :class:`~repro.core.stream_index.ColumnarSlice` already
        advanced to ``[first_batch, last_batch]``.  When present, timeless
        reads serve flat columns from the view and *replay* the row
        path's simulated charges against its cached geometry — same
        charges, same order, no per-row span walk.  The view is shared by
        the accesses of every branch node (charges depend only on
        ``home_node``, which each access applies itself).
    wall_stats:
        Optional dict accumulating wall-clock seconds under
        ``"index_read"`` (bench phase instrumentation).
    """

    def __init__(self, cluster: Cluster, store: DistributedStore,
                 strings: StringServer, registry: StreamIndexRegistry,
                 stream_schema: StreamSchema,
                 transients: List[TransientStore],
                 first_batch: int, last_batch: int, home_node: int = 0,
                 force_local_index: bool = False,
                 columnar: Optional[ColumnarSlice] = None,
                 wall_stats: Optional[dict] = None):
        self.cluster = cluster
        self.store = store
        self.strings = strings
        self.registry = registry
        self.schema = stream_schema
        self.transients = transients
        self.first_batch = first_batch
        self.last_batch = last_batch
        self.home_node = home_node
        self.columnar = columnar
        self.wall_stats = wall_stats
        self._cost = registry.index(stream_schema.name).cost
        # Registered queries have the index replicated to their node;
        # distributed branches get on-demand replicas (§4.2).
        self._index_local = force_local_index or \
            registry.is_local(stream_schema.name, home_node)
        #: True when no access through this window can ever price a
        #: fractional (remote) read: single-node clusters with a local
        #: index read only local spans and transients.  All remaining
        #: charges are integers, which sum exactly in any order — so
        #: callers may freely reorder or aggregate them (the batch
        #: kernels' fused index-expansion path relies on this).
        self.charges_commute = self._index_local \
            and len(cluster.nodes) == 1
        #: eid -> is-timing memo (the schema and string table never remap
        #: an encoded predicate, so the classification is stable).
        self._timing_eids: Dict[int, bool] = {}
        #: ``(fetched, {start: column})`` of the latest columnar
        #: :meth:`neighbors_many`, letting the charge-free follow-up hooks
        #: serve their sets/verdicts from the columns already in hand
        #: instead of re-probing the view.  Matched by identity on the
        #: exact ``fetched`` dict the caller passes back.
        self._last_fetch: Optional[tuple] = None

    def _is_timing(self, eid: int) -> bool:
        timing = self._timing_eids.get(eid)
        if timing is None:
            timing = self.schema.is_timing(self.strings.predicate_name(eid))
            self._timing_eids[eid] = timing
        return timing

    # -- StoreAccess protocol ------------------------------------------------
    def resolve_entity(self, name: str) -> Optional[int]:
        return self.strings.lookup_entity(name)

    def resolve_predicate(self, name: str) -> Optional[int]:
        return self.strings.lookup_predicate(name)

    def neighbors(self, vid: int, eid: int, d: int,
                  meter: LatencyMeter) -> List[int]:
        if self._is_timing(eid):
            return self._timing_neighbors(vid, eid, d, meter)
        if self.columnar is not None:
            return self._timeless_neighbors_columnar(vid, eid, d, meter)
        return self._timeless_neighbors(vid, eid, d, meter)

    def neighbors_many(self, starts: Iterable[int], eid: int, d: int,
                       meter: LatencyMeter) -> Dict[int, List[int]]:
        """Neighbour lists for every distinct start, keyed by start.

        Probes deduplicate in first-occurrence order — exactly the batch
        kernels' per-expansion cache — so charges accumulate identically
        to calling :meth:`neighbors` per distinct start.  The columnar
        path additionally aggregates the integer charges of all starts,
        emitting the pending counters before each (order-sensitive,
        fractional) remote read: integer partial sums are exact, so the
        meter stays bit-identical to the row path.
        """
        fetched: Dict[int, List[int]] = {}
        if self._is_timing(eid):
            for start in starts:
                if start not in fetched:
                    fetched[start] = self._timing_neighbors(start, eid, d,
                                                            meter)
            return fetched
        view = self.columnar
        if view is None:
            for start in starts:
                if start not in fetched:
                    fetched[start] = self._timeless_neighbors(start, eid,
                                                              d, meter)
            return fetched
        wall = self.wall_stats
        started = time.perf_counter() if wall is not None else 0.0
        cost = self._cost
        probes = view.probes
        index_local = self._index_local
        fabric = self.cluster.fabric
        home = self.home_node
        key_column = view.key_column
        columns_get = view._columns.get
        probe_ns = cost.index_probe_ns
        scan_ns = cost.scan_entry_ns
        eid_bits = (eid << _EID_SHIFT) | d
        hits = 0
        # Pending integer charges, accumulated as plain counters and
        # emitted before every fractional remote read (and once at the
        # end).  Integer partial sums are exact in any order, so the
        # meter — total and per-category breakdown — stays bit-identical
        # to the row path's per-probe/per-span charges.
        probe_acc = 0
        scan_acc = 0

        def _emit_pending():
            nonlocal probe_acc, scan_acc
            if probe_acc:
                meter.charge(probe_ns, times=probe_acc, category="store")
                probe_acc = 0
            if scan_acc:
                meter.charge(scan_ns, times=scan_acc, category="store")
                scan_acc = 0

        # C-level first-occurrence dedup: the loop below runs once per
        # distinct start instead of once per row.  The view's cache-hit
        # path (a plain dict probe on the inlined packed key) is hoisted
        # out of ``key_column``; hit counting is batched below.
        cols: Dict[int, object] = {}
        for start in dict.fromkeys(starts):
            if not index_local:
                _emit_pending()
                fabric.remote_read(meter, _PROBE_BYTES, category="network")
            probe_acc += probes
            col = columns_get((start << _VID_SHIFT) | eid_bits, _MISSING)
            if col is _MISSING:
                col = key_column((start << _VID_SHIFT) | eid_bits)
            else:
                hits += 1
            cols[start] = col
            if col is None:
                fetched[start] = []
                continue
            for owner, span in col.merged:
                if owner != home:
                    _emit_pending()
                    fabric.remote_read(meter, 16 + 8 * span.length,
                                       category="network")
                scan_acc += span.length
            fetched[start] = col.values
        _emit_pending()
        if hits:
            view.hits += hits
        self._last_fetch = (fetched, cols)
        if wall is not None:
            wall["index_read"] = wall.get("index_read", 0.0) \
                + (time.perf_counter() - started)
        return fetched

    def neighbor_sets(self, starts: Iterable[int], eid: int,
                      d: int) -> Optional[Dict[int, set]]:
        """Memoized per-start membership sets for the starts' neighbour
        lists, or None when there is no columnar view to remember them
        (the caller then builds its own sets).  Charge-free: the row
        path's membership filter is executor bookkeeping."""
        view = self.columnar
        if view is None or self._is_timing(eid):
            return None
        last = self._last_fetch
        if last is not None and last[0] is starts:
            sets: Dict[int, set] = {}
            for start, col in last[1].items():
                sets[start] = _EMPTY_SET if col is None else col.value_set()
            return sets
        return view.column_sets(starts, eid, d)

    def distinct_neighbors(self, starts: Iterable[int], eid: int,
                           d: int) -> Optional[bool]:
        """Memoized duplicate-free verdict for the starts' neighbour
        lists, or None when there is no columnar view to remember it
        (the caller then re-derives the verdict itself).  Charge-free:
        the row path's distinct check is executor bookkeeping."""
        view = self.columnar
        if view is None or self._is_timing(eid):
            return None
        last = self._last_fetch
        if last is not None and last[0] is starts:
            for col in last[1].values():
                if col is not None and not col.is_distinct():
                    return False
            return True
        return view.columns_distinct(starts, eid, d)

    def index_vertices(self, eid: int, d: int,
                       meter: LatencyMeter) -> List[int]:
        if self._is_timing(eid):
            out: List[int] = []
            seen = set()
            for node_id, transient in enumerate(self.transients):
                if node_id != self.home_node:
                    self.cluster.fabric.remote_read(meter, _PROBE_BYTES,
                                                    category="network")
                for vertex in transient.vertices(
                        eid, d, self.first_batch, self.last_batch,
                        meter=meter):
                    if vertex not in seen:
                        seen.add(vertex)
                        out.append(vertex)
            return out
        self._charge_index_locality(meter)
        if self.columnar is not None:
            out, scanned = self.columnar.vertices(eid, d)
            self._charge_vertices(meter, scanned)
            return list(out)  # callers own their copy, as on the row path
        return self.registry.index(self.schema.name).vertices(
            eid, d, self.first_batch, self.last_batch, meter=meter)

    def index_vertices_local(self, eid: int, d: int, node_id: int,
                             meter: LatencyMeter) -> List[int]:
        """The window's start vertices owned by ``node_id``.

        Fork-join/migrate branches partition the start set by owner; the
        stream index is consulted once (it is replicated where needed).
        """
        if self._is_timing(eid):
            return self.transients[node_id].vertices(
                eid, d, self.first_batch, self.last_batch, meter=meter)
        if self.columnar is not None:
            vertices, scanned = self.columnar.vertices(eid, d)
            self._charge_vertices(meter, scanned)
        else:
            vertices = self.registry.index(self.schema.name).vertices(
                eid, d, self.first_batch, self.last_batch, meter=meter)
        owner_of = self.cluster.owner_of
        return [vid for vid in vertices if owner_of(vid) == node_id]

    def _charge_vertices(self, meter: LatencyMeter, scanned: int) -> None:
        """Replay ``StreamIndex.vertices``'s charges for a cached column."""
        probes = self.columnar.probes
        if probes:
            meter.charge(self._cost.index_probe_ns, times=probes,
                         category="store")
            meter.charge(self._cost.scan_entry_ns, times=scanned,
                         category="store")

    # -- paths -----------------------------------------------------------------
    def _timeless_neighbors(self, vid: int, eid: int, d: int,
                            meter: LatencyMeter) -> List[int]:
        """Stream-index fast path: span lookups, then direct value reads.

        Spans of one key from consecutive batches are contiguous in the
        key's value list (injection appends in batch order), so the whole
        window usually collapses to a single fat pointer — one RDMA read
        per key, the paper's §5 claim.
        """
        self._charge_index_locality(meter)
        index = self.registry.index(self.schema.name)
        spans = index.lookup_spans(make_key(vid, eid, d), self.first_batch,
                                   self.last_batch, meter=meter)
        found: List[int] = []
        for owner, span in _merge_spans(spans):
            found.extend(self.store.span_from(self.home_node, span, owner,
                                              meter))
        return found

    def _timeless_neighbors_columnar(self, vid: int, eid: int, d: int,
                                     meter: LatencyMeter) -> List[int]:
        """Columnar fast path: serve the cached window column, replaying
        the row path's charge sequence against its merged-span geometry
        (locality read, probes, then one remote read + scan per span)."""
        wall = self.wall_stats
        started = time.perf_counter() if wall is not None else 0.0
        self._charge_index_locality(meter)
        view = self.columnar
        cost = self._cost
        probes = view.probes
        if probes:
            meter.charge(cost.index_probe_ns, times=probes,
                         category="store")
        col = view.key_column(make_key(vid, eid, d))
        if col is None:
            found: List[int] = []
        else:
            home = self.home_node
            fabric = self.cluster.fabric
            for owner, span in col.merged:
                if owner != home:
                    fabric.remote_read(meter, 16 + 8 * span.length,
                                       category="network")
                meter.charge(cost.scan_entry_ns, times=span.length,
                             category="store")
            found = col.values
        if wall is not None:
            wall["index_read"] = wall.get("index_read", 0.0) \
                + (time.perf_counter() - started)
        return found

    def _timing_neighbors(self, vid: int, eid: int, d: int,
                          meter: LatencyMeter) -> List[int]:
        """Transient-store path: the data lives on the vertex's owner node."""
        owner = self.cluster.owner_of(vid)
        if owner != self.home_node:
            self.cluster.fabric.remote_read(meter, _PROBE_BYTES,
                                            category="network")
        return self.transients[owner].lookup(
            vid, eid, d, self.first_batch, self.last_batch, meter=meter)

    def _charge_index_locality(self, meter: LatencyMeter) -> None:
        """A non-replicated index costs one extra remote read per access —
        exactly the read that locality-aware replication removes (§4.2)."""
        if not self._index_local:
            self.cluster.fabric.remote_read(meter, _PROBE_BYTES,
                                            category="network")
