"""Wukong+S core: the integrated stateful stream-querying engine.

The public entry point is :class:`~repro.core.engine.WukongSEngine`, which
wires together the hybrid store (§4.1), the stream index (§4.2), the
Adaptor/Dispatcher/Injector pipeline (Fig. 5) and the consistency machinery
(vector timestamps + bounded snapshot scalarization, §4.3).
"""

from repro.core.vts import VectorTimestamp
from repro.core.snapshot import SNMapping, SNVTSPlan
from repro.core.engine import WukongSEngine, EngineConfig

__all__ = [
    "VectorTimestamp",
    "SNMapping",
    "SNVTSPlan",
    "WukongSEngine",
    "EngineConfig",
]
