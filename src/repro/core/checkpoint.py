"""Fault tolerance: local logging, incremental checkpoints and recovery (§5).

Wukong+S assumes *upstream backup* (sources buffer and replay recent
batches) and provides at-least-once semantics for continuous queries.  Each
node synchronously logs the node-local halves of every injected batch —
the paper measures roughly 0.3 ms logging delay per batch — and a periodic
checkpoint marker records the stable vector timestamp, after which sources
are acknowledged and may trim their backup buffers.

Recovery of a crashed node (:func:`recover_node`) follows the paper's
recipe: reload the initial RDF data (the node's halves), re-apply the
durable log in original order — which reproduces the exact value-list
offsets, keeping every shared stream-index span valid — and restore the
vector-timestamp state.  Continuous queries are simply re-registered (they
are kept in the engine's durable registration log).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.dispatcher import NodeBatch
from repro.errors import FaultToleranceError
from repro.sim.cost import CostModel, LatencyMeter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.coordinator import Coordinator
    from repro.core.engine import WukongSEngine
    from repro.streams.source import StreamSource


@dataclass
class LoggedBatch:
    """One durable log record: a node's halves of one stream batch."""

    sequence: int
    node_id: int
    sn: int
    node_batch: NodeBatch


@dataclass
class CheckpointMarker:
    """One completed checkpoint."""

    at_ms: int
    stable_vts: Dict[str, int]
    stable_sn: int


class CheckpointManager:
    """Durable logging plus periodic checkpoint markers."""

    def __init__(self, cost: Optional[CostModel] = None,
                 interval_ms: int = 1_000, num_nodes: int = 1):
        if interval_ms <= 0:
            raise FaultToleranceError(
                f"checkpoint interval must be positive: {interval_ms}")
        if num_nodes < 1:
            raise FaultToleranceError(f"need >= 1 node: {num_nodes}")
        self.cost = cost if cost is not None else CostModel()
        self.interval_ms = interval_ms
        self.num_nodes = num_nodes
        self._log: List[LoggedBatch] = []
        self._markers: List[CheckpointMarker] = []
        self._last_checkpoint_ms: Optional[int] = None
        self.logging_delays_ms: List[float] = []
        self._entries_since_checkpoint = 0
        #: Duration of the most recent checkpoint (stalls co-scheduled
        #: queries; the paper's p99 growth in §6.8 comes from this).
        self.last_checkpoint_pause_ms = 0.0

    # -- logging ---------------------------------------------------------
    def log_batch(self, node_id: int, node_batch: NodeBatch, sn: int,
                  meter: Optional[LatencyMeter] = None) -> None:
        """Durably log one node batch (synchronous, on the injection path)."""
        delay = LatencyMeter()
        delay.charge(self.cost.log_entry_ns,
                     times=max(1, node_batch.num_inserts), category="log")
        self.logging_delays_ms.append(delay.ms)
        if meter is not None:
            meter.add(delay)
        self._log.append(LoggedBatch(
            sequence=len(self._log), node_id=node_id, sn=sn,
            node_batch=node_batch))
        self._entries_since_checkpoint += node_batch.num_inserts

    # -- checkpoints ------------------------------------------------------
    def maybe_checkpoint(self, now_ms: int, coordinator: "Coordinator",
                         sources: Dict[str, "StreamSource"]) -> bool:
        """Checkpoint if the interval elapsed; returns whether one ran."""
        if self._last_checkpoint_ms is None:
            self._last_checkpoint_ms = now_ms
            return False
        if now_ms - self._last_checkpoint_ms < self.interval_ms:
            return False
        self.checkpoint(now_ms, coordinator, sources)
        return True

    def checkpoint(self, now_ms: int, coordinator: "Coordinator",
                   sources: Dict[str, "StreamSource"]) -> CheckpointMarker:
        """Record the stable state and acknowledge the sources."""
        stable = coordinator.stable_vts().as_dict()
        marker = CheckpointMarker(at_ms=now_ms, stable_vts=stable,
                                  stable_sn=coordinator.stable_sn)
        self._markers.append(marker)
        self._last_checkpoint_ms = now_ms
        # Incremental checkpoint: persist everything logged since the last
        # marker.  Nodes write their local logs in parallel; queries
        # scheduled during the write observe one node's write time.
        pause = LatencyMeter()
        per_node = -(-self._entries_since_checkpoint // self.num_nodes)
        pause.charge(self.cost.log_entry_ns, times=per_node,
                     category="ckpt")
        self.last_checkpoint_pause_ms = pause.ms
        self._entries_since_checkpoint = 0
        for stream, source in sources.items():
            source.ack(stable.get(stream, 0))
        return marker

    # -- recovery inputs ------------------------------------------------------
    def logged_for_node(self, node_id: int) -> List[LoggedBatch]:
        """The durable log of one node, in original append order."""
        return [entry for entry in self._log if entry.node_id == node_id]

    @property
    def num_checkpoints(self) -> int:
        return len(self._markers)

    @property
    def latest_marker(self) -> Optional[CheckpointMarker]:
        return self._markers[-1] if self._markers else None

    def mean_logging_delay_ms(self) -> float:
        if not self.logging_delays_ms:
            return 0.0
        return sum(self.logging_delays_ms) / len(self.logging_delays_ms)


def recover_node(engine: "WukongSEngine", node_id: int) -> None:
    """Rebuild a crashed node's state from durable inputs.

    Order matters: the initial data is reloaded first, then the durable
    log in its original sequence, so every value-list offset matches the
    pre-crash layout and the (shared) stream-index spans stay valid.
    """
    manager = engine.checkpoints
    if manager is None:
        raise FaultToleranceError("engine has no checkpoint manager")
    cluster = engine.cluster
    if cluster.nodes[node_id].alive:
        raise FaultToleranceError(f"node {node_id} is not down")
    cluster.restart_node(node_id)

    # 1. Reload the node's halves of the initially stored data.
    for triple in engine._initial_triples:
        enc = engine.strings.encode_triple(triple)
        if cluster.owner_of(enc.s) == node_id:
            engine.store.insert_out_edge(enc)
        if cluster.owner_of(enc.o) == node_id:
            engine.store.insert_in_edge(enc)

    # 2. Re-apply the durable log in original order (timeless halves to the
    #    persistent store, timing halves as fresh transient slices).
    injector = engine.injectors[node_id]
    for entry in manager.logged_for_node(node_id):
        injector.inject(entry.node_batch, entry.sn, index_slice=None,
                        meter=None)

    # 3. Drop transient slices that expired while the node was down.
    engine.gc.run(engine.clock.now_ms)
