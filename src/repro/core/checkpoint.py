"""Fault tolerance: local logging, incremental checkpoints and recovery (§5).

Wukong+S assumes *upstream backup* (sources buffer and replay recent
batches) and provides at-least-once semantics for continuous queries.  Each
node synchronously logs the node-local halves of every injected batch —
the paper measures roughly 0.3 ms logging delay per batch — and a periodic
checkpoint marker records the stable vector timestamp, after which sources
are acknowledged and may trim their backup buffers.

Recovery of a crashed node (:func:`recover_node`) follows the paper's
recipe: reload the initial RDF data (the node's halves), re-apply the
durable log in original order — which reproduces the exact value-list
offsets, keeping every shared stream-index span valid — and restore the
vector-timestamp state.  Continuous queries are simply re-registered (they
are kept in the engine's durable registration log).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.dispatcher import NodeBatch
from repro.errors import FaultToleranceError, StreamError
from repro.sim.cost import CostModel, LatencyMeter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.coordinator import Coordinator
    from repro.core.engine import WukongSEngine
    from repro.streams.source import StreamSource


def batch_checksum(node_batch: NodeBatch) -> int:
    """CRC32 over a node batch's content (its durable-log checksum).

    Computed over the encoded integer triples and timestamps (never
    ``hash()``, whose string mixing is randomized per process), so the
    value is a pure function of the batch content and reproducible across
    runs — which is what lets recovery detect a corrupted log record.
    """
    crc = zlib.crc32(node_batch.stream.encode())
    crc = zlib.crc32(b"#%d@%d" % (node_batch.batch_no, node_batch.node_id),
                     crc)
    for group in (node_batch.out_timeless, node_batch.in_timeless,
                  node_batch.out_timing, node_batch.in_timing):
        crc = zlib.crc32(b"|", crc)
        for encoded in group:
            triple = encoded.triple
            crc = zlib.crc32(
                b"%d,%d,%d,%d;" % (triple.s, triple.p, triple.o,
                                   encoded.timestamp_ms), crc)
    return crc


@dataclass
class LoggedBatch:
    """One durable log record: a node's halves of one stream batch."""

    sequence: int
    node_id: int
    sn: int
    node_batch: NodeBatch
    #: Content CRC written with the record; ``None`` for records produced
    #: before checksumming existed (treated as trusted).
    checksum: Optional[int] = None


@dataclass
class CheckpointMarker:
    """One completed checkpoint."""

    at_ms: int
    stable_vts: Dict[str, int]
    stable_sn: int


class CheckpointManager:
    """Durable logging plus periodic checkpoint markers."""

    def __init__(self, cost: Optional[CostModel] = None,
                 interval_ms: int = 1_000, num_nodes: int = 1):
        if interval_ms <= 0:
            raise FaultToleranceError(
                f"checkpoint interval must be positive: {interval_ms}")
        if num_nodes < 1:
            raise FaultToleranceError(f"need >= 1 node: {num_nodes}")
        self.cost = cost if cost is not None else CostModel()
        self.interval_ms = interval_ms
        self.num_nodes = num_nodes
        self._log: List[LoggedBatch] = []
        self._markers: List[CheckpointMarker] = []
        self._last_checkpoint_ms: Optional[int] = None
        #: Interval-grid cell of the last checkpoint (``now // interval``).
        self._last_cell: Optional[int] = None
        self.logging_delays_ms: List[float] = []
        self._entries_since_checkpoint = 0
        #: Duration of the most recent checkpoint (stalls co-scheduled
        #: queries; the paper's p99 growth in §6.8 comes from this).
        self.last_checkpoint_pause_ms = 0.0

    # -- logging ---------------------------------------------------------
    def log_batch(self, node_id: int, node_batch: NodeBatch, sn: int,
                  meter: Optional[LatencyMeter] = None) -> None:
        """Durably log one node batch (synchronous, on the injection path)."""
        delay = LatencyMeter()
        delay.charge(self.cost.log_entry_ns,
                     times=max(1, node_batch.num_inserts), category="log")
        self.logging_delays_ms.append(delay.ms)
        if meter is not None:
            meter.add(delay)
        self._log.append(LoggedBatch(
            sequence=len(self._log), node_id=node_id, sn=sn,
            node_batch=node_batch, checksum=batch_checksum(node_batch)))
        self._entries_since_checkpoint += node_batch.num_inserts

    # -- checkpoints ------------------------------------------------------
    def maybe_checkpoint(self, now_ms: int, coordinator: "Coordinator",
                         sources: Dict[str, "StreamSource"]) -> bool:
        """Checkpoint when the interval grid is crossed; returns whether
        one ran.

        The schedule is *grid-aligned* (a checkpoint fires when
        ``now // interval`` exceeds the last checkpoint's cell) rather
        than elapsed-interval based: an engine that skipped checkpoints
        while degraded re-joins the exact schedule of a never-faulted run
        at the next grid boundary, which is what bounds the window in
        which recovery perturbs checkpoint-pause charges.
        """
        cell = now_ms // self.interval_ms
        if self._last_cell is None:
            self._last_cell = cell
            self._last_checkpoint_ms = now_ms
            return False
        if cell <= self._last_cell:
            return False
        self.checkpoint(now_ms, coordinator, sources)
        return True

    def checkpoint(self, now_ms: int, coordinator: "Coordinator",
                   sources: Dict[str, "StreamSource"]) -> CheckpointMarker:
        """Record the stable state and acknowledge the sources."""
        stable = coordinator.stable_vts().as_dict()
        marker = CheckpointMarker(at_ms=now_ms, stable_vts=stable,
                                  stable_sn=coordinator.stable_sn)
        self._markers.append(marker)
        self._last_checkpoint_ms = now_ms
        self._last_cell = now_ms // self.interval_ms
        # Incremental checkpoint: persist everything logged since the last
        # marker.  Nodes write their local logs in parallel; queries
        # scheduled during the write observe one node's write time.
        pause = LatencyMeter()
        per_node = -(-self._entries_since_checkpoint // self.num_nodes)
        pause.charge(self.cost.log_entry_ns, times=per_node,
                     category="ckpt")
        self.last_checkpoint_pause_ms = pause.ms
        self._entries_since_checkpoint = 0
        for stream, source in sources.items():
            source.ack(stable.get(stream, 0))
        return marker

    # -- recovery inputs ------------------------------------------------------
    def logged_for_node(self, node_id: int) -> List[LoggedBatch]:
        """The durable log of one node, in original append order."""
        return [entry for entry in self._log if entry.node_id == node_id]

    @property
    def num_checkpoints(self) -> int:
        return len(self._markers)

    @property
    def latest_marker(self) -> Optional[CheckpointMarker]:
        return self._markers[-1] if self._markers else None

    def mean_logging_delay_ms(self) -> float:
        if not self.logging_delays_ms:
            return 0.0
        return sum(self.logging_delays_ms) / len(self.logging_delays_ms)


@dataclass
class RecoveryReport:
    """What one :func:`recover_node` run did, with its simulated cost."""

    node_id: int
    reloaded_triples: int = 0
    replayed_entries: int = 0
    rejected_entries: int = 0
    rebuilt_batches: List[Tuple[str, int]] = field(default_factory=list)
    meter: LatencyMeter = field(default_factory=LatencyMeter)


def _rebuild_from_upstream(engine: "WukongSEngine", entry: LoggedBatch,
                           meter: LatencyMeter) -> NodeBatch:
    """Re-derive a corrupt log record's node batch from upstream backup.

    The source replays the original stream batch (priced as a one-way TCP
    transfer — sources live outside the rack), and the stateless
    Adaptor/Dispatcher pair re-derives the node's halves.  String IDs were
    all allocated on first injection, so re-encoding is deterministic and
    the rebuilt batch is bit-identical to the uncorrupted record.
    """
    damaged = entry.node_batch
    source = engine.sources.get(damaged.stream)
    if source is None:
        raise FaultToleranceError(
            f"log record for batch {damaged.stream}#{damaged.batch_no} is "
            f"corrupt and stream has no attached source to rebuild from")
    try:
        replayed = [b for b in source.replay(damaged.batch_no - 1)
                    if b.batch_no == damaged.batch_no]
    except StreamError as exc:
        raise FaultToleranceError(
            f"log record for batch {damaged.stream}#{damaged.batch_no} is "
            f"corrupt and upstream backup was trimmed: {exc}") from exc
    if not replayed:
        raise FaultToleranceError(
            f"log record for batch {damaged.stream}#{damaged.batch_no} is "
            f"corrupt and upstream backup no longer holds the batch")
    batch = replayed[0]
    payload = engine.config.memory.tuple_bytes * len(batch.tuples)
    engine.cluster.fabric.replay_transfer(meter, payload, category="replay")
    adapted = engine.adaptors[batch.stream].adapt(batch, meter=meter)
    node_batches = engine.dispatchers[batch.stream].dispatch(adapted,
                                                             meter=meter)
    return node_batches[damaged.node_id]


def recover_node(engine: "WukongSEngine", node_id: int) -> RecoveryReport:
    """Rebuild a crashed node's state from durable inputs.

    Order matters: the initial data is reloaded first, then the durable
    log in its original sequence, so every value-list offset matches the
    pre-crash layout and the (shared) stream-index spans stay valid.

    Every log record's CRC is verified before replay; a corrupt record is
    rejected and rebuilt from upstream backup (§5's at-least-once story:
    the source still buffers everything past the last acknowledged
    checkpoint).  The rebuilt record replaces the corrupt one, so a later
    recovery of the same node replays a clean log.

    All recovery work is charged to the returned report's meter — never to
    injection records or query meters, keeping the healthy path's
    simulated time independent of how a run was healed.
    """
    manager = engine.checkpoints
    if manager is None:
        raise FaultToleranceError("engine has no checkpoint manager")
    cluster = engine.cluster
    if cluster.nodes[node_id].alive:
        raise FaultToleranceError(f"node {node_id} is not down")
    cluster.restart_node(node_id)
    report = RecoveryReport(node_id=node_id)
    meter = report.meter
    cost = manager.cost

    # 1. Reload the node's halves of the initially stored data.
    halves = 0
    for triple in engine._initial_triples:
        enc = engine.strings.encode_triple(triple)
        if cluster.owner_of(enc.s) == node_id:
            engine.store.insert_out_edge(enc)
            halves += 1
        if cluster.owner_of(enc.o) == node_id:
            engine.store.insert_in_edge(enc)
            halves += 1
    report.reloaded_triples = halves
    meter.charge(cost.insert_entry_ns, times=halves, category="recovery")

    # 2. Re-apply the durable log in original order (timeless halves to the
    #    persistent store, timing halves as fresh transient slices),
    #    rejecting records whose checksum no longer matches their content.
    injector = engine.injectors[node_id]
    for entry in manager.logged_for_node(node_id):
        if entry.checksum is not None and \
                batch_checksum(entry.node_batch) != entry.checksum:
            report.rejected_entries += 1
            rebuilt = _rebuild_from_upstream(engine, entry, meter)
            entry.node_batch = rebuilt
            entry.checksum = batch_checksum(rebuilt)
            report.rebuilt_batches.append((rebuilt.stream, rebuilt.batch_no))
        injector.inject(entry.node_batch, entry.sn, index_slice=None,
                        meter=meter)
        report.replayed_entries += 1

    # 3. Drop transient slices that expired while the node was down, then
    #    let the coordinator resume normal SN publication.
    engine.gc.run(engine.clock.now_ms)
    engine.coordinator.mark_node_up(node_id)
    return report
