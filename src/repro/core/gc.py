"""The garbage collector for transient slices and stream-index slices.

Timing data and stream-index entries are only needed while some registered
continuous query's window can still reach them (§4.1-4.2).  The collector
computes, per stream, the earliest batch any query still needs — the
*expiry floor* — and frees everything older, from the early side of the
time-ordered slice sequences.  Streams no registered query consumes fall
back to a configurable retention horizon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.continuous import ContinuousEngine
from repro.core.stream_index import StreamIndexRegistry
from repro.core.transient import TransientStore
from repro.sim.cost import LatencyMeter


@dataclass
class GCStats:
    """Cumulative collection counters."""

    runs: int = 0
    transient_slices_freed: int = 0
    index_slices_freed: int = 0


class GarbageCollector:
    """Periodic background collection over every stream's stores."""

    def __init__(self, registry: StreamIndexRegistry,
                 transients: Dict[str, List[TransientStore]],
                 continuous: ContinuousEngine,
                 batch_interval_ms: int, stream_start_ms: int = 0,
                 retention_ms: int = 10_000):
        self.registry = registry
        self.transients = transients
        self.continuous = continuous
        self.batch_interval_ms = batch_interval_ms
        self.stream_start_ms = stream_start_ms
        self.retention_ms = retention_ms
        self.stats = GCStats()

    def expiry_floor_batch(self, stream: str, now_ms: int) -> int:
        """Batches strictly below this number are unreachable for every
        registered query over ``stream``."""
        floors_ms: List[int] = []
        for registered in self.continuous.queries.values():
            window = registered.query.windows.get(stream)
            if window is not None:
                # The oldest data the *next* execution can reach.
                floors_ms.append(registered.next_close_ms - window.range_ms)
        floor_ms = min(floors_ms) if floors_ms else now_ms - self.retention_ms
        if floor_ms <= self.stream_start_ms:
            return 1
        # Batch k covers [start+(k-1)*i, start+k*i): batches entirely below
        # floor_ms are collectable.
        return (floor_ms - self.stream_start_ms) // self.batch_interval_ms + 1

    def run(self, now_ms: int,
            meter: Optional[LatencyMeter] = None) -> GCStats:
        """One collection pass over every stream."""
        self.stats.runs += 1
        for stream in self.registry.streams:
            floor = self.expiry_floor_batch(stream, now_ms)
            self.stats.index_slices_freed += \
                self.registry.index(stream).collect(floor, meter=meter)
            for transient in self.transients.get(stream, []):
                self.stats.transient_slices_freed += \
                    transient.collect(floor, meter=meter)
        return self.stats
