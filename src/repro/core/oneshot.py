"""The one-shot query engine.

One-shot (plain SPARQL) queries are read-only transactions over the
evolving persistent store: each execution reads at the coordinator's
current stable snapshot number, so it observes every stream batch the
published SN plan has completed cluster-wide and nothing newer — snapshot
isolation without locks, since stream insertion is append-only (§4.3).

One-shot workers run on dedicated cores separate from the continuous
engine; the small interference the paper measures between the two engines
(Table 8, about 5%) is modelled by a configurable contention factor applied
while continuous queries are actively registered.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.coordinator import Coordinator
from repro.sim.cluster import Cluster
from repro.sim.cost import LatencyMeter
from repro.sparql.ast import Query
from repro.sparql.planner import ExecutionPlan, plan_order, plan_query
from repro.store.distributed import DistributedStore, PersistentAccess
from repro.store.executor import ExecutionResult, GraphExplorer

#: Bound on cached compiled plans (FIFO eviction).
PLAN_CACHE_CAPACITY = 128


@dataclass
class OneShotRecord:
    """One completed one-shot execution."""

    result: ExecutionResult
    meter: LatencyMeter
    snapshot: int

    @property
    def latency_ms(self) -> float:
        return self.meter.ms


class OneShotEngine:
    """Executes one-shot queries under snapshot isolation."""

    def __init__(self, cluster: Cluster, store: DistributedStore,
                 coordinator: Coordinator,
                 contention_factor: float = 0.05,
                 use_batch: bool = True):
        self.cluster = cluster
        self.store = store
        self.coordinator = coordinator
        self.contention_factor = contention_factor
        # ``use_batch`` selects the columnar step kernels for every mode
        # (FILTER-bearing plans included) — wall-clock-only, simulated
        # charges are bit-identical either way.
        self.explorer = GraphExplorer(cluster, store.strings,
                                      use_batch=use_batch)
        self._next_home = 0
        self._stats = None  # lazy: avoids a core.stats import cycle
        #: (normalized AST, pattern order) -> planned-and-compiled plan.
        self._plan_cache: Dict[Tuple, ExecutionPlan] = {}
        #: Wall-clock-only cache effectiveness counters (never charged).
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        #: Observability hooks (attached by ``engine.enable_observability``).
        self.tracer = None
        self.metrics = None
        #: When set (a dict), wall-clock seconds per phase are accumulated
        #: under "plan" here; the explorer handles "explore"/"project".
        self.wall_stats: Optional[Dict[str, float]] = None

    def _statistics(self):
        if self._stats is None:
            from repro.core.stats import PredicateStatistics
            self._stats = PredicateStatistics(self.store)
        return self._stats

    def plan(self, query: Query) -> ExecutionPlan:
        """The selectivity-ordered plan for ``query``, cached.

        The greedy ordering pass runs on every call (it is cheap and must
        track the store's evolving cardinalities); the constructed plan —
        and the compiled slot layout the executor caches on it — is reused
        whenever the normalized AST *and* the chosen order repeat.
        """
        order = plan_order(query.patterns, stats=self._statistics())
        key = (query.cache_key(), tuple(order))
        plan = self._plan_cache.get(key)
        if plan is None:
            self.plan_cache_misses += 1
            cache = self._plan_cache
            if len(cache) >= PLAN_CACHE_CAPACITY:
                del cache[next(iter(cache))]
            plan = plan_query(query, fixed_order=order)
            cache[key] = plan
        else:
            self.plan_cache_hits += 1
        return plan

    def execute(self, query: Query, home_node: Optional[int] = None,
                contended: bool = False,
                snapshot: Optional[int] = None,
                access_factory=None) -> OneShotRecord:
        """Run ``query`` once.

        ``contended`` marks that continuous workers are concurrently busy
        on the shared store (Wukong+S/On in Table 8); ``snapshot``
        overrides the read snapshot (defaults to the stable SN);
        ``access_factory`` (``node_id -> (pattern -> StoreAccess)``)
        overrides the default persistent-store access — the temporal
        engine passes a counting access so snapshot reads are observable
        without touching this hot path.
        """
        if query.is_continuous:
            raise ValueError(
                "continuous queries must be registered, not run one-shot")
        if home_node is None:
            home_node = self._next_home % self.cluster.num_nodes
            self._next_home += 1
        sn = self.coordinator.stable_sn if snapshot is None else snapshot
        meter = LatencyMeter()
        act = self.tracer.begin("oneshot", "query", meter, snapshot=sn,
                                home_node=home_node,
                                patterns=len(query.patterns)) \
            if self.tracer is not None else None
        meter.charge(self.cluster.cost.task_dispatch_ns, category="dispatch")
        if act is not None:
            act.mark("dispatch")

        if access_factory is not None:
            factory = access_factory
        else:
            def factory(node_id):
                access = PersistentAccess(self.store, home_node=node_id,
                                          max_sn=sn)
                return lambda pattern: access

        wall = self.wall_stats
        started = time.perf_counter() if wall is not None else 0.0
        plan = self.plan(query)
        if wall is not None:
            wall["plan"] = wall.get("plan", 0.0) \
                + (time.perf_counter() - started)
        if act is not None:
            act.mark("plan", steps=len(plan.steps))
        result = self.explorer.execute(plan, factory, meter,
                                       home_node=home_node)
        if contended and self.contention_factor > 0:
            meter.charge(meter.ns * self.contention_factor,
                         category="contention")
            if act is not None:
                act.mark("contention")
        if act is not None:
            act.label(rows=len(result.rows))
            act.end()
        if self.metrics is not None:
            self.metrics.histogram("oneshot_ns").observe(meter.ns)
        return OneShotRecord(result=result, meter=meter, snapshot=sn)
