"""The continuous query engine: registration and data-driven execution.

A registered continuous query lives on a *home node* (continuous queries
are light-weight and execute in-place on a single worker, §5); registration
declares interest in the query's streams so the stream-index registry
replicates those indexes to the home node (locality-aware partitioning,
§4.2).  Execution is data-driven: an execution closing at time ``t`` fires
only once the stable vector timestamp covers the last batch every window
needs (§4.3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.access import WindowAccess
from repro.core.coordinator import Coordinator
from repro.core.stream_index import ColumnarSlice, StreamIndexRegistry
from repro.core.transient import TransientStore
from repro.errors import RegistrationError
from repro.rdf.string_server import StringServer
from repro.sim.cluster import Cluster
from repro.sim.cost import LatencyMeter
from repro.sparql.ast import Query
from repro.sparql.planner import ExecutionPlan, plan_order, plan_query
from repro.store.distributed import DistributedStore, PersistentAccess
from repro.store.executor import ExecutionResult, GraphExplorer
from repro.streams.stream import StreamSchema
from repro.streams.window import WindowPlanner


@dataclass
class ExecutionRecord:
    """One completed execution of a continuous query."""

    close_ms: int
    result: ExecutionResult
    meter: LatencyMeter

    @property
    def latency_ms(self) -> float:
        return self.meter.ms


@dataclass
class GapMarker:
    """A window close the engine could not serve on time (degraded mode).

    Instead of silently skipping the window, the engine reports the gap to
    subscribers; once recovery catches up and the execution actually runs,
    the marker is resolved with the time the late result arrived.  Until
    then ``resolved_ms`` is None.
    """

    query: str
    close_ms: int
    noted_ms: int
    reason: str = "degraded"
    resolved_ms: Optional[int] = None

    @property
    def resolved(self) -> bool:
        return self.resolved_ms is not None


@dataclass
class RegisteredQuery:
    """A continuous query held by the engine."""

    name: str
    query: Query
    plan: ExecutionPlan
    home_node: int
    planners: Dict[str, WindowPlanner]
    step_ms: int
    next_close_ms: int
    #: The active plan's pattern ordering (a permutation of pattern
    #: indices) — the only statistics-dependent part of the plan, and the
    #: second half of the continuous plan-cache key.
    plan_order: Tuple[int, ...] = ()
    #: Registered with an explicit ``fixed_order``: the adaptive
    #: re-planner (``repro.core.replan``) never touches pinned queries.
    #: Golden workloads pin their orders so re-planning stays opt-in.
    pinned: bool = False
    #: Applied plan swaps, in order (``repro.core.replan.ReplanEvent``).
    replans: List[object] = field(default_factory=list)
    #: Closes already seen by the plan monitor at its last check / swap
    #: (the monitor's per-query cadence and cool-down state).
    closes_at_last_check: int = 0
    closes_at_last_swap: Optional[int] = None
    executions: List[ExecutionRecord] = field(default_factory=list)
    #: ``(cache key, factory)`` of the last access factory built; reused
    #: while the stable SN and every window's batch range stand still.
    access_cache: Optional[tuple] = None
    #: Per-stream columnar window views (the incremental window-delta
    #: cache): each close advances the view by the window step, reusing
    #: the previous close's columns.  Batch path only; wall-clock-only.
    window_views: Dict[str, ColumnarSlice] = field(default_factory=dict)
    #: Window closes missed while the cluster was degraded (in close
    #: order; resolved in place when catch-up executes them).
    gaps: List[GapMarker] = field(default_factory=list)

    def requirement_at(self, close_ms: int) -> Dict[str, int]:
        """Stream -> last batch number needed for the execution at close_ms."""
        return {stream: planner.last_batch_needed(close_ms)
                for stream, planner in self.planners.items()}


class ContinuousEngine:
    """Registration and triggering of continuous queries."""

    def __init__(self, cluster: Cluster, store: DistributedStore,
                 strings: StringServer, registry: StreamIndexRegistry,
                 transients: Dict[str, List[TransientStore]],
                 coordinator: Coordinator, schemas: Dict[str, StreamSchema],
                 batch_interval_ms: int, stream_start_ms: int = 0,
                 use_batch: bool = True):
        self.cluster = cluster
        self.store = store
        self.strings = strings
        self.registry = registry
        self.transients = transients
        self.coordinator = coordinator
        self.schemas = schemas
        self.batch_interval_ms = batch_interval_ms
        self.stream_start_ms = stream_start_ms
        # Columnar step kernels for window executions in every mode
        # (fork-join/migrate included); wall-clock-only.
        self.explorer = GraphExplorer(cluster, self.strings,
                                      use_batch=use_batch)
        self.queries: Dict[str, RegisteredQuery] = {}
        self._next_home = 0
        #: ``(normalized AST key, ordering) -> ExecutionPlan``, bounded
        #: FIFO.  The ordering is part of the key, so a re-plan can never
        #: serve a stale compiled executor: a new ordering is a new plan
        #: object, and the executor's compiled form is cached *on* the
        #: plan (``plan._compiled``), invalidating both together.
        self._plan_cache: Dict[tuple, ExecutionPlan] = {}
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        #: Observability hooks (attached by ``engine.enable_observability``).
        self.tracer = None
        self.metrics = None
        #: When set (a dict), wall-clock seconds of window-view
        #: maintenance and columnar index reads accumulate under
        #: ``"index_read"`` (bench phase instrumentation; share the dict
        #: with ``explorer.wall_stats`` for a full phase breakdown).
        self.wall_stats = None

    # -- registration -------------------------------------------------------
    def register(self, query: Query, now_ms: int,
                 home_node: Optional[int] = None,
                 name: Optional[str] = None,
                 fixed_order: Optional[Sequence[int]] = None
                 ) -> RegisteredQuery:
        """Register a continuous query; returns its handle.

        The home node defaults to round-robin placement across the cluster
        (each query is served by one worker; many queries spread out).
        ``name`` overrides the query's own registration name — the serving
        layer uses this to register many client queries that all carry the
        same ``REGISTER QUERY`` name (or share one backing registration)
        without colliding in the engine's namespace.

        ``fixed_order`` (a permutation of pattern indices) *pins* the
        query to that exact pattern ordering: the adaptive re-planner
        skips pinned queries forever.  Golden workloads pin their
        registration-time orders so adaptive engines replay bit-identically.
        """
        if not query.is_continuous:
            raise RegistrationError(
                "query has no stream windows; submit it as one-shot instead")
        if name is None:
            name = query.name or f"q{len(self.queries)}"
        if name in self.queries:
            raise RegistrationError(f"query name already registered: {name}")
        for stream in query.windows:
            if stream not in self.schemas:
                raise RegistrationError(f"unknown stream: {stream}")
        if fixed_order is not None:
            order = tuple(fixed_order)
        else:
            # Registration-time plan: the purely positional greedy order
            # (no statistics — registration typically happens against a
            # cold store; the plan monitor re-plans once the store warms).
            order = tuple(plan_order(query.patterns))
        plan = self._plan_for(query, order)
        if home_node is None:
            # Locality-aware placement: a constant-start (selective) query
            # runs on the node that owns its start vertex, so its window
            # reads are local and it completes within a single node (§5's
            # in-place execution).  Index-start queries spread round-robin.
            home_node = self._locality_home(plan)
        if home_node is None:
            home_node = self._next_home % self.cluster.num_nodes
            self._next_home += 1

        planners = {
            stream: WindowPlanner(window, self.batch_interval_ms,
                                  self.stream_start_ms)
            for stream, window in query.windows.items()
        }
        step_ms = min(w.step_ms for w in query.windows.values())
        registered = RegisteredQuery(
            name=name, query=query, plan=plan,
            home_node=home_node, planners=planners, step_ms=step_ms,
            next_close_ms=now_ms + step_ms,
            plan_order=order, pinned=fixed_order is not None)
        # Locality-aware partitioning: replicate the indexes of the streams
        # this query consumes onto its home node.
        for stream in query.windows:
            self.registry.add_interest(stream, home_node)
        self.queries[name] = registered
        return registered

    def _locality_home(self, plan: ExecutionPlan) -> Optional[int]:
        """Owner node of the plan's constant start vertex, if any."""
        from repro.sparql.planner import CONST_OBJECT, CONST_SUBJECT
        step = plan.steps[0]
        if step.kind == CONST_SUBJECT:
            term = step.pattern.subject
        elif step.kind == CONST_OBJECT:
            term = step.pattern.object
        else:
            return None
        vid = self.strings.lookup_entity(term)
        return None if vid is None else self.cluster.owner_of(vid)

    #: Bounded continuous plan-cache size (FIFO, like the one-shot cache).
    PLAN_CACHE_CAPACITY = 128

    def _plan_for(self, query: Query, order: Tuple[int, ...]
                  ) -> ExecutionPlan:
        """The execution plan of ``query`` under ``order``, cached.

        Keyed ``(normalized AST, ordering)``: equal-AST queries under the
        same ordering share one plan object (and with it the executor's
        compiled form), while a re-plan to a new ordering always misses —
        building a fresh plan whose compiled executor is compiled from the
        new step sequence, never a stale one.
        """
        key = (query.cache_key(), order)
        plan = self._plan_cache.get(key)
        if plan is not None:
            self.plan_cache_hits += 1
            return plan
        self.plan_cache_misses += 1
        plan = plan_query(query, fixed_order=order)
        cache = self._plan_cache
        if len(cache) >= self.PLAN_CACHE_CAPACITY:
            del cache[next(iter(cache))]
        cache[key] = plan
        return plan

    def swap_plan(self, registered: RegisteredQuery,
                  order: Sequence[int]) -> ExecutionPlan:
        """Swap ``registered`` onto the plan for ``order`` (a permutation
        of its pattern indices).

        Called by the plan monitor *between* window closes (after a
        :meth:`poll`), so every close runs start-to-finish under exactly
        one plan.  The access factory and columnar window views are
        plan-independent (keyed by stable SN and batch ranges) and carry
        over untouched; only the plan reference — and with it the compiled
        executor — changes.
        """
        new_order = tuple(order)
        registered.plan = self._plan_for(registered.query, new_order)
        registered.plan_order = new_order
        return registered.plan

    def unregister(self, name: str) -> None:
        registered = self.queries.pop(name, None)
        if registered is None:
            raise RegistrationError(f"no such continuous query: {name}")
        for stream in registered.query.windows:
            self.registry.drop_interest(stream, registered.home_node)

    # -- execution ------------------------------------------------------------
    def poll(self, now_ms: int) -> List[ExecutionRecord]:
        """Execute every registered query whose next window is closed, due
        and covered by the stable VTS.  Returns the new execution records."""
        records: List[ExecutionRecord] = []
        for registered in self.queries.values():
            while registered.next_close_ms <= now_ms:
                requirement = registered.requirement_at(
                    registered.next_close_ms)
                if not self.coordinator.is_ready(requirement):
                    break  # data-driven: wait for insertion to catch up
                records.append(self.execute_once(
                    registered, registered.next_close_ms))
                for marker in registered.gaps:
                    if marker.close_ms == registered.next_close_ms \
                            and marker.resolved_ms is None:
                        marker.resolved_ms = now_ms
                registered.next_close_ms += registered.step_ms
        return records

    def note_gaps(self, now_ms: int, reason: str = "degraded"
                  ) -> List[GapMarker]:
        """Report (without executing) every due window close as a gap.

        Called instead of :meth:`poll` while the cluster is degraded: a
        dead node's shard is empty, so executing would silently return
        wrong (partial) answers.  ``next_close_ms`` is *not* advanced —
        the normal catch-up loop in :meth:`poll` runs the missed closes
        once recovery completes, and resolves these markers.
        """
        fresh: List[GapMarker] = []
        for registered in self.queries.values():
            noted = {marker.close_ms for marker in registered.gaps}
            close = registered.next_close_ms
            while close <= now_ms:
                if close not in noted:
                    marker = GapMarker(query=registered.name, close_ms=close,
                                       noted_ms=now_ms, reason=reason)
                    registered.gaps.append(marker)
                    fresh.append(marker)
                close += registered.step_ms
        return fresh

    def execute_once(self, registered: RegisteredQuery,
                     close_ms: int) -> ExecutionRecord:
        """Run one execution of ``registered`` for the window closing at
        ``close_ms`` (callers must ensure readiness)."""
        meter = LatencyMeter()
        act = self.tracer.begin("window", "continuous", meter,
                                query=registered.name, close_ms=close_ms,
                                home_node=registered.home_node) \
            if self.tracer is not None else None
        meter.charge(self.cluster.cost.task_dispatch_ns, category="dispatch")
        meter.charge(self.cluster.cost.trigger_check_ns, category="trigger")
        if act is not None:
            act.mark("dispatch")
        factory = self._access_factory(registered, close_ms)
        result = self.explorer.execute(registered.plan, factory, meter,
                                       home_node=registered.home_node)
        if act is not None:
            act.label(rows=len(result.rows))
            act.end()
        if self.metrics is not None:
            self.metrics.histogram(
                "window_ns", query=registered.name).observe(meter.ns)
        record = ExecutionRecord(close_ms=close_ms, result=result,
                                 meter=meter)
        registered.executions.append(record)
        return record

    def _access_factory(self, registered: RegisteredQuery, close_ms: int
                        ) -> Callable:
        """Per-node pattern -> StoreAccess factory for one execution.

        Distributed modes (fork-join / migrate) resolve accesses at other
        nodes; the stream index is available wherever a branch runs (it is
        replicated on demand, §4.2), so every node's window access treats
        the index as local.

        The factory (and the per-node accesses it memoizes) is cached on
        the registered query and reused while the stable SN and every
        window's batch range are unchanged — under that key the visible
        data is identical, and construction charges no simulated time, so
        reuse is free of simulated-time effects.  ``crash_node`` swaps
        shard/transient list elements in place, so captured references
        stay valid across failures.
        """
        stable_sn = self.coordinator.stable_sn
        ranges = {stream: planner.batch_range(close_ms)
                  for stream, planner in registered.planners.items()}
        key = (stable_sn, tuple(sorted(ranges.items())))
        cached = registered.access_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        views: Dict[str, ColumnarSlice] = {}
        if self.explorer.use_batch:
            # Advance each stream's columnar view to this close's range:
            # the incremental window delta appends the newly closed
            # batches and drops the expired prefix, keeping every other
            # cached column.  Row mode (use_batch=False) keeps the pure
            # per-row span walk as the differential reference.
            wall = self.wall_stats
            started = time.perf_counter() if wall is not None else 0.0
            for stream, (first, last) in ranges.items():
                view = registered.window_views.get(stream)
                if view is None:
                    view = registered.window_views[stream] = ColumnarSlice(
                        self.registry.index(stream), self.store)
                view.advance(first, last)
                views[stream] = view
            if wall is not None:
                # Separate key from the access-side "index_read": view
                # advances run *outside* the explorer's "explore" span,
                # while the access reads run inside it, and the bench
                # combines them into one disjoint index-read phase.
                wall["window_advance"] = wall.get("window_advance", 0.0) \
                    + (time.perf_counter() - started)
        cache: Dict[int, Callable] = {}

        def factory(node_id: int):
            resolver = cache.get(node_id)
            if resolver is not None:
                return resolver
            window_access: Dict[str, WindowAccess] = {}
            for stream, (first, last) in ranges.items():
                # The home node relies on the replica its registration
                # created (§4.2); branches at other nodes receive
                # on-demand replicas for the distributed modes.
                window_access[stream] = WindowAccess(
                    cluster=self.cluster, store=self.store,
                    strings=self.strings, registry=self.registry,
                    stream_schema=self.schemas[stream],
                    transients=self.transients[stream], first_batch=first,
                    last_batch=last, home_node=node_id,
                    force_local_index=(node_id != registered.home_node),
                    columnar=views.get(stream),
                    wall_stats=self.wall_stats)
            stored_access = PersistentAccess(
                self.store, home_node=node_id, max_sn=stable_sn)

            def resolver(pattern):
                access = window_access.get(pattern.graph)
                return access if access is not None else stored_access

            cache[node_id] = resolver
            return resolver

        registered.access_cache = (key, factory)
        return factory
