"""Adaptive re-optimization of registered continuous queries.

A registered query plans exactly once, at registration time — typically
against a near-empty store, so every long-lived query would otherwise run
forever on cold cardinality guesses even though
:class:`~repro.core.stats.PredicateStatistics` (live counters plus top-k
degree sketches) has long since learned the real skew.  This module closes
that gap, following Strider's hybrid adaptive planning (arXiv:1705.05688):
keep executing the current plan, periodically re-derive the ordering from
live statistics, and swap only when the estimated win is large enough to
be worth disturbing a running plan.

:class:`PlanMonitor` runs off the *simulated* clock: the engine invokes it
once per healthy tick, after the continuous poll, so plan swaps always
land between window closes — every close runs start-to-finish under
exactly one plan, which is what makes the post-swap execution stream
bit-identical to a run that used the final ordering from the start
(``tests/core/test_replan.py`` proves rows, meters and state digest).

The keep-or-swap rule (per query, every ``check_every_closes`` closes):

1. Freeze the statistics into a :class:`~repro.core.stats.StatsSnapshot`
   (one consistent epoch for both sides of the comparison).
2. Candidate ordering = ``plan_order(patterns, stats=snapshot)``.
3. If the candidate differs, compare ``estimate_plan_cost`` of the active
   vs candidate ordering *under the same snapshot*.  Swap only when the
   active plan is estimated at ≥ ``hysteresis`` times the candidate's cost
   (default 1.5x) **and** the query is past its swap cool-down
   (``cooldown_closes`` closes since the last swap).  Oscillating
   statistics therefore trigger at most one re-plan per cool-down window;
   everything else increments a skip counter instead.

Queries registered with an explicit ``fixed_order`` are *pinned* and never
re-planned — golden workloads pin their registration-time orders so
adaptive engines replay them bit-identically.

The same telemetry-driven theme covers the adjacency-segment cache:
:class:`AdjacencyBudget` resizes each shard's cache capacity from the
hit/miss/eviction counters the obs metrics registry exports, instead of
trusting the fixed ``EngineConfig`` knob forever.  Both controllers are
wall-clock-only actuators in the simulated-cost sense: a plan swap changes
which (simulated) work each close performs — that is the point, and why
``adaptive_replan`` defaults off — while adjacency resizing never changes
simulated charges at all (cache hits charge exactly the uncached cost).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.continuous import ContinuousEngine, RegisteredQuery
from repro.sparql.planner import estimate_plan_cost, plan_order


@dataclass(frozen=True)
class ReplanEvent:
    """One applied plan swap (kept on the query handle, in order)."""

    query: str
    #: Closes the query had executed when the swap was applied.
    close_index: int
    #: Simulated clock at the swap.
    clock_ms: int
    old_order: Tuple[int, ...]
    new_order: Tuple[int, ...]
    #: ``estimate_plan_cost`` of both orderings under the decision
    #: snapshot (same epoch for both — that is the determinism contract).
    estimated_old_cost: float
    estimated_new_cost: float
    #: Statistics epoch the decision snapshot was taken at.
    stats_epoch: int

    @property
    def estimated_improvement(self) -> float:
        if self.estimated_new_cost > 0:
            return self.estimated_old_cost / self.estimated_new_cost
        return math.inf if self.estimated_old_cost > 0 else 1.0


class PlanMonitor:
    """Periodic statistics-driven re-planning with hysteresis.

    ``statistics`` is any provider with the ``PredicateStatistics``
    interface plus ``snapshot(patterns)``/``epoch()``; tests substitute
    synthetic providers to script stat trajectories.
    """

    def __init__(self, continuous: ContinuousEngine, statistics,
                 check_every_closes: int = 8, hysteresis: float = 1.5,
                 cooldown_closes: int = 24):
        if check_every_closes < 1:
            raise ValueError(
                f"check_every_closes must be >= 1: {check_every_closes}")
        if hysteresis < 1.0:
            raise ValueError(f"hysteresis must be >= 1.0: {hysteresis}")
        if cooldown_closes < 1:
            raise ValueError(
                f"cooldown_closes must be >= 1: {cooldown_closes}")
        self.continuous = continuous
        self.statistics = statistics
        self.check_every_closes = check_every_closes
        self.hysteresis = hysteresis
        self.cooldown_closes = cooldown_closes
        #: Wall-clock-only decision counters (pulled by
        #: ``repro.obs.metrics.collect_metrics``).
        self.checks = 0
        self.replans = 0
        self.skipped_hysteresis = 0
        self.skipped_cooldown = 0
        #: Observability hooks (attached by ``engine.enable_observability``).
        self.tracer = None
        self.metrics = None

    # -- cadence -----------------------------------------------------------
    def on_tick(self, now_ms: int) -> List[ReplanEvent]:
        """Run due re-plan checks; called between window closes.

        A query becomes due every ``check_every_closes`` *executed* closes
        (counting executions, not wall ticks, keeps the cadence aligned
        with how much evidence the window stream has produced — an idle
        query is never re-planned on stale evidence).
        """
        events: List[ReplanEvent] = []
        for registered in self.continuous.queries.values():
            if registered.pinned:
                continue
            closes = len(registered.executions)
            if closes - registered.closes_at_last_check \
                    < self.check_every_closes:
                continue
            registered.closes_at_last_check = closes
            event = self._check(registered, closes, now_ms)
            if event is not None:
                events.append(event)
        return events

    # -- the keep-or-swap decision ----------------------------------------
    def _check(self, registered: RegisteredQuery, closes: int,
               now_ms: int) -> Optional[ReplanEvent]:
        patterns = registered.query.patterns
        snapshot = self.statistics.snapshot(patterns)
        candidate = tuple(plan_order(patterns, stats=snapshot))
        current = registered.plan_order
        self.checks += 1
        current_cost = estimate_plan_cost(patterns, current, snapshot)
        if self.metrics is not None:
            self._publish_costs(registered, current_cost)
        if candidate == current:
            return None
        candidate_cost = estimate_plan_cost(patterns, candidate, snapshot)
        if candidate_cost > 0:
            improvement = current_cost / candidate_cost
        else:
            improvement = math.inf if current_cost > 0 else 1.0
        if improvement < self.hysteresis:
            self.skipped_hysteresis += 1
            if self.metrics is not None:
                self.metrics.counter("planner_replan_skipped_hysteresis",
                                     query=registered.name).inc()
            return None
        last_swap = registered.closes_at_last_swap
        if last_swap is not None and \
                closes - last_swap < self.cooldown_closes:
            self.skipped_cooldown += 1
            if self.metrics is not None:
                self.metrics.counter("planner_replan_skipped_cooldown",
                                     query=registered.name).inc()
            return None
        event = ReplanEvent(
            query=registered.name, close_index=closes, clock_ms=now_ms,
            old_order=current, new_order=candidate,
            estimated_old_cost=current_cost,
            estimated_new_cost=candidate_cost,
            stats_epoch=snapshot.epoch)
        self.continuous.swap_plan(registered, candidate)
        registered.closes_at_last_swap = closes
        registered.replans.append(event)
        self.replans += 1
        if self.metrics is not None:
            self.metrics.counter("planner_replans",
                                 query=registered.name).inc()
        if self.tracer is not None:
            # An instantaneous simulated-time event: the swap itself
            # charges nothing (it happens between closes), so the span is
            # recorded after the fact with zero duration.
            self.tracer.event_span(
                "replan", "planner", 0.0, query=registered.name,
                close_index=closes,
                old_order=",".join(map(str, current)),
                new_order=",".join(map(str, candidate)),
                improvement=round(event.estimated_improvement, 3),
                stats_epoch=snapshot.epoch)
        return event

    def _publish_costs(self, registered: RegisteredQuery,
                       estimated_cost: float) -> None:
        """Estimated-vs-actual gauges for the *active* plan: the model's
        cost estimate next to the simulated latency the plan actually
        produced at its most recent close."""
        self.metrics.gauge("planner_estimated_cost",
                           query=registered.name).set(estimated_cost)
        if registered.executions:
            self.metrics.gauge(
                "planner_actual_close_ns",
                query=registered.name).set(
                    registered.executions[-1].meter.ns)


class AdjacencyBudget:
    """Telemetry-driven sizing of the per-shard adjacency-segment cache.

    Every ``every_ticks`` engine ticks, reads each shard's hit/miss/
    eviction deltas since its last look (the same counters the obs
    metrics registry exports as ``adjacency_*``) and resizes:

    * evictions in the window → the working set does not fit; double the
      capacity (up to ``max_capacity``).
    * no evictions and the cache is at most a quarter full → pay back the
      memory; halve the capacity (down to ``min_capacity``), evicting any
      overflow in insertion order.

    Purely wall-clock: adjacency hits charge exactly the uncached cost,
    so capacity changes never move simulated time (the invariant
    ``tests/store/test_adjacency_cache.py`` pins).
    """

    def __init__(self, store, min_capacity: int = 1 << 10,
                 max_capacity: int = 1 << 20, every_ticks: int = 10):
        if min_capacity < 1 or max_capacity < min_capacity:
            raise ValueError(
                f"bad capacity bounds: [{min_capacity}, {max_capacity}]")
        if every_ticks < 1:
            raise ValueError(f"every_ticks must be >= 1: {every_ticks}")
        self.store = store
        self.min_capacity = min_capacity
        self.max_capacity = max_capacity
        self.every_ticks = every_ticks
        self._ticks = 0
        #: Per-shard (hits, misses, evictions) at the last look.
        self._last: dict = {}
        self.grows = 0
        self.shrinks = 0
        self.metrics = None

    def on_tick(self) -> None:
        self._ticks += 1
        if self._ticks % self.every_ticks:
            return
        for node_id, shard in enumerate(self.store.shards):
            seen = (shard.adjacency_hits, shard.adjacency_misses,
                    shard.adjacency_evictions)
            last = self._last.get(node_id, (0, 0, 0))
            self._last[node_id] = seen
            hits = seen[0] - last[0]
            misses = seen[1] - last[1]
            evictions = seen[2] - last[2]
            if hits + misses == 0:
                continue  # idle shard: no evidence either way
            capacity = shard.adjacency_capacity
            occupancy = shard._adjacency_weight if shard.adjacency_weighted \
                else len(shard._adjacency)
            if evictions > 0 and capacity < self.max_capacity:
                shard.set_adjacency_capacity(
                    min(self.max_capacity, capacity * 2))
                self.grows += 1
            elif evictions == 0 and occupancy * 4 <= capacity \
                    and capacity > self.min_capacity:
                shard.set_adjacency_capacity(
                    max(self.min_capacity, capacity // 2))
                self.shrinks += 1
            if self.metrics is not None:
                self.metrics.gauge("adjacency_cache_capacity",
                                   node=node_id).set(
                                       shard.adjacency_capacity)
