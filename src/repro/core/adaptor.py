"""The Adaptor: batching, filtering and timing/timeless classification.

The Adaptor sits at the entrance of the execution flow (Fig. 5b): it groups
incoming tuples into mini-batches (done upstream by
:func:`repro.streams.stream.batch_tuples`), discards tuples no registered
query can ever touch, converts strings to IDs via the string server, and
classifies each tuple as *timing* or *timeless* according to the stream's
schema so the Dispatcher/Injector can route it to the right store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.rdf.string_server import StringServer
from repro.rdf.terms import EncodedTuple
from repro.sim.cost import CostModel, LatencyMeter
from repro.streams.stream import StreamBatch, StreamSchema


@dataclass
class AdaptedBatch:
    """One mini-batch after adaptation: encoded and classified."""

    stream: str
    batch_no: int
    start_ms: int
    end_ms: int
    timeless: List[EncodedTuple] = field(default_factory=list)
    timing: List[EncodedTuple] = field(default_factory=list)
    discarded: int = 0

    @property
    def num_tuples(self) -> int:
        return len(self.timeless) + len(self.timing)


class Adaptor:
    """Adapts one stream's raw batches for injection.

    Parameters
    ----------
    schema:
        The stream schema (name + timing predicates).
    strings:
        Shared string server used to encode terms.
    relevant_predicates:
        When given, tuples whose predicate is not in the set are discarded
        (the paper's "discard unrelated tuples" step).  None keeps all.
    """

    def __init__(self, schema: StreamSchema, strings: StringServer,
                 cost: Optional[CostModel] = None,
                 relevant_predicates: Optional[Set[str]] = None):
        self.schema = schema
        self.strings = strings
        self.cost = cost if cost is not None else CostModel()
        self.relevant_predicates = relevant_predicates
        #: predicate -> is-timing memo (schemas never reclassify).
        self._timing_memo: Dict[str, bool] = {}

    def adapt(self, batch: StreamBatch,
              meter: Optional[LatencyMeter] = None) -> AdaptedBatch:
        """Encode and classify one batch."""
        adapted = AdaptedBatch(
            stream=batch.stream, batch_no=batch.batch_no,
            start_ms=batch.start_ms, end_ms=batch.end_ms)
        tuples = batch.tuples
        if meter is not None and tuples:
            # One aggregated scan charge: the per-tuple charges are a
            # run of identical integers with nothing in between, so one
            # ``times=n`` charge is bit-identical.
            meter.charge(self.cost.scan_entry_ns, times=len(tuples),
                         category="adapt")
        relevant = self.relevant_predicates
        encode = self.strings.encode_tuple
        timing_memo = self._timing_memo
        memo_get = timing_memo.get
        append_timing = adapted.timing.append
        append_timeless = adapted.timeless.append
        discarded = 0
        for tup in tuples:
            predicate = tup.triple.predicate
            if relevant is not None and predicate not in relevant:
                discarded += 1
                continue
            verdict = memo_get(predicate)
            if verdict is None:
                verdict = timing_memo[predicate] = \
                    self.schema.is_timing(predicate)
            if verdict:
                append_timing(encode(tup))
            else:
                append_timeless(encode(tup))
        adapted.discarded = discarded
        return adapted
