"""The Dispatcher: partitioning adapted batches across nodes.

Each tuple contributes an out-edge on the owner of its subject and an
in-edge on the owner of its object, for both the persistent store (timeless
data) and the transient store (timing data) — the same sharding for both,
co-locating a stream's data (§4.1).  The Dispatcher slices one adapted
batch into per-node sub-batches and prices the one-way transfers to remote
injectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.adaptor import AdaptedBatch
from repro.rdf.terms import EncodedTuple
from repro.sim.cluster import Cluster
from repro.sim.cost import LatencyMeter, MemoryModel


@dataclass
class NodeBatch:
    """The slice of one stream batch destined for one node's injector."""

    stream: str
    batch_no: int
    node_id: int
    out_timeless: List[EncodedTuple] = field(default_factory=list)
    in_timeless: List[EncodedTuple] = field(default_factory=list)
    out_timing: List[EncodedTuple] = field(default_factory=list)
    in_timing: List[EncodedTuple] = field(default_factory=list)

    @property
    def num_inserts(self) -> int:
        return (len(self.out_timeless) + len(self.in_timeless)
                + len(self.out_timing) + len(self.in_timing))


class Dispatcher:
    """Partitions adapted batches; lives on the node the stream arrives at."""

    def __init__(self, cluster: Cluster, source_node: int = 0,
                 memory: Optional[MemoryModel] = None):
        self.cluster = cluster
        self.source_node = source_node
        self.memory = memory if memory is not None else MemoryModel()
        #: node_id -> stream tuples routed to that node's injector so far.
        #: Pure wall-clock bookkeeping (never charged): the serving layer
        #: reads these to steer one-shot traffic away from injection-hot
        #: nodes, and operators read them as a per-node load view.
        self.tuples_routed: Dict[int, int] = {
            node.node_id: 0 for node in cluster.nodes}

    def dispatch(self, adapted: AdaptedBatch,
                 meter: Optional[LatencyMeter] = None) -> Dict[int, NodeBatch]:
        """Split one batch by owner node; prices remote transfers.

        Every node receives a (possibly empty) NodeBatch so injectors can
        advance their vector timestamps even for batches that carry no
        local data — visibility requires insertion *on all nodes* (§4.3).
        """
        batches: Dict[int, NodeBatch] = {
            node.node_id: NodeBatch(adapted.stream, adapted.batch_no,
                                    node.node_id)
            for node in self.cluster.nodes
        }
        if len(batches) == 1:
            # Single-node fast path: every owner is the one node, so the
            # per-tuple routing collapses to whole-list copies (same
            # elements, same order as the append loop below).
            node_batch = next(iter(batches.values()))
            node_batch.out_timeless = list(adapted.timeless)
            node_batch.in_timeless = list(adapted.timeless)
            node_batch.out_timing = list(adapted.timing)
            node_batch.in_timing = list(adapted.timing)
        else:
            owner_of = self.cluster.owner_of
            for encoded in adapted.timeless:
                triple = encoded.triple
                batches[owner_of(triple.s)].out_timeless.append(encoded)
                batches[owner_of(triple.o)].in_timeless.append(encoded)
            for encoded in adapted.timing:
                triple = encoded.triple
                batches[owner_of(triple.s)].out_timing.append(encoded)
                batches[owner_of(triple.o)].in_timing.append(encoded)
        for node_id, node_batch in batches.items():
            self.tuples_routed[node_id] += node_batch.num_inserts
        if meter is not None:
            # Transfers to the injectors proceed in parallel; the batch
            # waits for the largest one.
            sends = []
            for node_id, node_batch in batches.items():
                if node_id == self.source_node:
                    continue
                branch = meter.spawn()
                payload = self.memory.tuple_bytes * node_batch.num_inserts
                self.cluster.fabric.one_way(branch, payload,
                                            category="dispatch")
                sends.append(branch)
            meter.join_parallel(sends)
        return batches
