"""The recovery-equivalence harness.

:func:`run_equivalence` runs one workload twice — once untouched, once
under a :class:`~repro.chaos.plan.FaultPlan` — and checks the headline
invariant of the fault model: after every fault has healed, the chaotic
engine's query results and queryable state are **bit-identical** to the
never-faulted run's.

What must match, and where:

* **Rows** of every continuous execution: identical everywhere, including
  the catch-up executions of window closes missed while degraded.
* **State digest** (:func:`~repro.chaos.state.engine_state_digest`): equal
  after a final GC pass on both engines (interim GC floors differ while a
  run is degraded — the floors are monotone and converge, the final pass
  realigns both sides).
* **Injection records** (order, content and simulated cost): identical,
  except under straggler faults, whose whole point is to surcharge
  injection meters — there only the order/content projection must match.
* **Execution meters**: identical outside the *opaque interval*
  ``[first_fault_ms, next checkpoint-grid boundary after the last
  heal]``.  Inside it, checkpoint-pause surcharges legitimately differ (a
  degraded run skips checkpoints, so entries-since-checkpoint — and the
  pause the next checkpoint charges — diverge until the grid realigns);
  rows still match even there.

Gap accounting is also checked: the chaotic run must report a gap marker
for every missed close and resolve every one of them by the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.chaos.controller import ChaosController
from repro.chaos.plan import FaultPlan
from repro.chaos.state import (diff_digests, digest_sha256,
                               engine_state_digest)
from repro.core.engine import WukongSEngine


def _meter_facts(meter) -> List:
    return [meter.ns, dict(sorted(meter.breakdown_ms.items()))]


def _execution_facts(engine: WukongSEngine) -> Dict[str, List]:
    return {
        name: [[rec.close_ms, list(rec.result.variables),
                [list(row) for row in rec.result.rows]]
               + _meter_facts(rec.meter)
               for rec in handle.executions]
        for name, handle in sorted(engine.continuous.queries.items())
    }


def _injection_facts(engine: WukongSEngine, with_meters: bool) -> List:
    return [[rec.stream, rec.batch_no, rec.num_tuples]
            + (_meter_facts(rec.meter) if with_meters else [])
            for rec in engine.injection_records]


@dataclass
class EquivalenceReport:
    """The verdict of one faulted-vs-golden comparison."""

    plan: FaultPlan
    ticks: int
    first_fault_ms: Optional[int]
    heal_ms: Optional[int]
    #: End of the opaque interval: the first checkpoint-grid boundary at
    #: or after the last heal.  Meters of executions closing inside
    #: ``[first_fault_ms, opaque_end_ms]`` are not compared.
    opaque_end_ms: Optional[int]
    events: List[dict] = field(default_factory=list)
    gaps: List[dict] = field(default_factory=list)
    recoveries: int = 0
    mismatches: List[str] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        verdict = "EQUIVALENT" if self.equivalent else \
            f"{len(self.mismatches)} MISMATCHES"
        window = "no faults fired" if self.first_fault_ms is None else \
            f"opaque [{self.first_fault_ms}, {self.opaque_end_ms}] ms"
        return (f"plan {self.plan.name or '?'} "
                f"({'+'.join(self.plan.kinds)}): {verdict}; {window}; "
                f"{len(self.gaps)} gaps, {self.recoveries} recoveries")


def run_equivalence(build_engine: Callable[[], WukongSEngine],
                    plan: FaultPlan, ticks: int) -> EquivalenceReport:
    """Run the workload fault-free and faulted; compare exhaustively.

    ``build_engine`` must return a fresh engine with all sources attached
    and all continuous queries registered; it is called twice and must be
    deterministic.  The chaotic run drives the same number of ticks, so
    both clocks end at the same instant.
    """
    golden = build_engine()
    for _ in range(ticks):
        golden.step()
    golden.gc.run(golden.clock.now_ms)

    chaotic = build_engine()
    controller = ChaosController(plan)
    controller.attach(chaotic, ticks=ticks)
    for _ in range(ticks):
        chaotic.step()
    chaotic.gc.run(chaotic.clock.now_ms)

    interval = chaotic.config.checkpoint_interval_ms
    first_fault_ms = controller.first_fault_ms
    heal_ms = controller.heal_ms
    opaque_end_ms: Optional[int] = None
    if first_fault_ms is not None:
        last_heal = heal_ms if heal_ms is not None else first_fault_ms
        opaque_end_ms = (last_heal // interval + 1) * interval

    report = EquivalenceReport(
        plan=plan, ticks=ticks, first_fault_ms=first_fault_ms,
        heal_ms=heal_ms, opaque_end_ms=opaque_end_ms,
        events=[event.as_dict() for event in controller.events],
        recoveries=len(controller.reports))
    problems = report.mismatches

    if controller.outstanding:
        problems.append(f"plan did not fully play out: "
                        f"{controller.outstanding} effects outstanding")

    # 1. Results: rows everywhere; meters outside the opaque interval.
    golden_execs = _execution_facts(golden)
    chaos_execs = _execution_facts(chaotic)
    if sorted(golden_execs) != sorted(chaos_execs):
        problems.append(f"query sets differ: {sorted(golden_execs)} vs "
                        f"{sorted(chaos_execs)}")
    for name in sorted(set(golden_execs) & set(chaos_execs)):
        gold, chaos = golden_execs[name], chaos_execs[name]
        if len(gold) != len(chaos):
            problems.append(f"{name}: {len(gold)} vs {len(chaos)} "
                            f"executions")
            continue
        for g, c in zip(gold, chaos):
            close_ms = g[0]
            if g[:3] != c[:3]:
                problems.append(f"{name}@{close_ms}: rows differ: "
                                f"{g[:3]!r} vs {c[:3]!r}")
            opaque = first_fault_ms is not None and \
                first_fault_ms <= close_ms <= opaque_end_ms
            if not opaque and g[3:] != c[3:]:
                problems.append(f"{name}@{close_ms}: meters differ "
                                f"outside the opaque interval: "
                                f"{g[3:]!r} vs {c[3:]!r}")

    # 2. Injection records: full equality, or order/content only when the
    #    plan straggles an injector (the one fault that taxes this meter).
    with_meters = not plan.has_straggler
    gold_inj = _injection_facts(golden, with_meters)
    chaos_inj = _injection_facts(chaotic, with_meters)
    if gold_inj != chaos_inj:
        for i, (g, c) in enumerate(zip(gold_inj, chaos_inj)):
            if g != c:
                problems.append(f"injection[{i}] differs: {g!r} vs {c!r}")
                break
        if len(gold_inj) != len(chaos_inj):
            problems.append(f"injection count {len(gold_inj)} vs "
                            f"{len(chaos_inj)}")

    # 3. State: the full digests, post final GC on both sides.
    problems.extend(diff_digests(engine_state_digest(golden),
                                 engine_state_digest(chaotic)))

    # 4. Gap accounting on the chaotic side.
    for name, handle in sorted(chaotic.continuous.queries.items()):
        for marker in handle.gaps:
            report.gaps.append({
                "query": name, "close_ms": marker.close_ms,
                "noted_ms": marker.noted_ms, "reason": marker.reason,
                "resolved_ms": marker.resolved_ms})
            if not marker.resolved:
                problems.append(f"unresolved gap: {name}@{marker.close_ms}")
    for name, handle in sorted(golden.continuous.queries.items()):
        if handle.gaps:
            problems.append(f"fault-free run reported gaps for {name}")
    return report


def chaos_run_facts(build_engine: Callable[[], WukongSEngine],
                    plan: FaultPlan, ticks: int) -> Dict:
    """A JSON-safe record of one chaotic run, for golden files.

    Runs only the faulted side (no golden comparison) and captures the
    chaos chronicle plus fingerprints of the results and final state.
    The workload and plan must be RNG-free or drawn from ``stable_rng``
    for the fingerprints to be stable across processes.
    """
    engine = build_engine()
    controller = ChaosController(plan)
    controller.attach(engine, ticks=ticks)
    for _ in range(ticks):
        engine.step()
    engine.gc.run(engine.clock.now_ms)
    gaps = []
    for name, handle in sorted(engine.continuous.queries.items()):
        for marker in handle.gaps:
            gaps.append({"query": name, "close_ms": marker.close_ms,
                         "noted_ms": marker.noted_ms,
                         "reason": marker.reason,
                         "resolved_ms": marker.resolved_ms})
    return {
        "plan": plan.describe(),
        "ticks": ticks,
        "first_fault_ms": controller.first_fault_ms,
        "heal_ms": controller.heal_ms,
        "events": [event.as_dict() for event in controller.events],
        "gaps": gaps,
        "recoveries": [{"node_id": rep.node_id,
                        "replayed_entries": rep.replayed_entries,
                        "rejected_entries": rep.rejected_entries,
                        "rebuilt": [list(item)
                                    for item in rep.rebuilt_batches]}
                       for rep in controller.reports],
        "results_sha256": digest_sha256(_execution_facts(engine)),
        "state_sha256": digest_sha256(engine_state_digest(engine)),
    }
