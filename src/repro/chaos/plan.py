"""The FaultPlan DSL: what goes wrong, where, and exactly when.

A fault plan is data, not code: a list of small declarative fault records
("kill node 1 at tick 12, mid-batch, for 4 ticks", "hold Like_Stream batch
#17 in flight for 3 ticks") that the
:class:`~repro.chaos.controller.ChaosController` executes against a running
engine.  Ticks count :meth:`~repro.core.engine.WukongSEngine.step` calls
(the first step is tick 1), so a plan is positioned on the simulated
timeline independent of the batch interval.

:func:`random_fault_plan` draws a plan from the seeded deterministic RNG
(:func:`~repro.sim.rng.stable_rng`, stable across processes) with the seed
choosing the primary fault kind — ``seed % 4`` cycles kill / message
(delay or drop) / straggler / corrupt-then-kill — so any 4k consecutive
seeds cover every fault type.  Generated plans respect the constraints
that make recovery equivalence provable:

* every fault heals well before the run ends, leaving room for catch-up;
* a corrupted log record is paired with a *later* kill of the same node in
  the same checkpoint-grid window (no checkpoint may ack — and trim — the
  upstream backup between corruption and recovery, or the record would be
  unrebuildable and recovery would fail, correctly but uninterestingly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple, Union

from repro.errors import ChaosError
from repro.sim.rng import stable_rng


@dataclass(frozen=True)
class KillNode:
    """Crash ``node_id`` at ``at_tick``; recover it ``down_ticks`` later.

    ``after_batches`` > 0 arms a *mid-tick* kill: the node dies between
    batch injections, after that many batches were admitted this tick —
    the nastiest spot, with the tick's work half done.
    """

    at_tick: int
    node_id: int
    down_ticks: int
    after_batches: int = 0

    @property
    def recover_tick(self) -> int:
        return self.at_tick + self.down_ticks


@dataclass(frozen=True)
class DelayMessage:
    """Hold stream batch ``batch_no`` in flight for ``hold_ticks`` ticks.

    The batch is intercepted when the source hands it to the engine and
    released — in batch order — once the hold expires.
    """

    stream: str
    batch_no: int
    hold_ticks: int


@dataclass(frozen=True)
class DropMessage:
    """Lose stream batch ``batch_no`` in flight; the loss is detected
    ``detect_ticks`` ticks later and the batch re-fetched from the
    source's upstream-backup buffer (priced as a replay transfer)."""

    stream: str
    batch_no: int
    detect_ticks: int


@dataclass(frozen=True)
class Straggler:
    """Multiply ``node_id``'s injection cost by ``factor`` for a while.

    A straggler perturbs simulated *injection* latency only — results and
    state stay bit-identical, which the equivalence harness checks.
    """

    at_tick: int
    node_id: int
    factor: float
    duration_ticks: int

    @property
    def end_tick(self) -> int:
        return self.at_tick + self.duration_ticks


@dataclass(frozen=True)
class CorruptRecord:
    """Flip bits in ``node_id``'s newest un-acked durable log record.

    Invisible until that node's log is replayed: pair it with a later
    :class:`KillNode` of the same node so recovery detects the bad CRC,
    rejects the record and rebuilds it from upstream backup.
    """

    at_tick: int
    node_id: int


Fault = Union[KillNode, DelayMessage, DropMessage, Straggler, CorruptRecord]


@dataclass
class FaultPlan:
    """An ordered set of scheduled faults plus its provenance."""

    faults: List[Fault] = field(default_factory=list)
    name: str = ""
    seed: int = -1

    @property
    def has_straggler(self) -> bool:
        return any(isinstance(f, Straggler) for f in self.faults)

    @property
    def kinds(self) -> List[str]:
        return sorted({type(f).__name__ for f in self.faults})

    def describe(self) -> List[dict]:
        """JSON-safe dump of the plan (golden files, debugging output)."""
        out = []
        for fault in self.faults:
            entry = {"kind": type(fault).__name__}
            entry.update({k: getattr(fault, k)
                          for k in fault.__dataclass_fields__})
            out.append(entry)
        return out

    def validate(self, num_nodes: int, streams: Sequence[str],
                 ticks: int, ticks_per_checkpoint: int = 10) -> None:
        """Reject malformed or unprovable plans with :class:`ChaosError`."""
        kills: List[KillNode] = []
        for fault in self.faults:
            if isinstance(fault, (KillNode, Straggler, CorruptRecord)):
                if not 0 <= fault.node_id < num_nodes:
                    raise ChaosError(
                        f"{type(fault).__name__} targets node "
                        f"{fault.node_id}; cluster has {num_nodes}")
                if fault.at_tick < 1:
                    raise ChaosError(f"faults fire from tick 1: {fault}")
            if isinstance(fault, (DelayMessage, DropMessage)):
                if fault.stream not in streams:
                    raise ChaosError(
                        f"{type(fault).__name__} targets unknown stream "
                        f"{fault.stream!r}")
                if fault.batch_no < 1:
                    raise ChaosError(f"batch numbers start at 1: {fault}")
            if isinstance(fault, KillNode):
                if fault.down_ticks < 1 or fault.after_batches < 0:
                    raise ChaosError(f"malformed kill: {fault}")
                if fault.recover_tick >= ticks - 1:
                    raise ChaosError(
                        f"kill must heal before the run ends (tick "
                        f"{fault.recover_tick} vs {ticks} ticks): {fault}")
                kills.append(fault)
            if isinstance(fault, DelayMessage) and fault.hold_ticks < 1:
                raise ChaosError(f"malformed delay: {fault}")
            if isinstance(fault, DropMessage) and fault.detect_ticks < 1:
                raise ChaosError(f"malformed drop: {fault}")
            if isinstance(fault, Straggler) and \
                    (fault.factor <= 1.0 or fault.duration_ticks < 1):
                raise ChaosError(f"malformed straggler: {fault}")
        for a in kills:
            for b in kills:
                if a is not b and a.at_tick <= b.at_tick < a.recover_tick:
                    raise ChaosError(
                        f"overlapping kills of nodes {a.node_id} and "
                        f"{b.node_id}: recovery replays against a stalled "
                        f"plan one node at a time")
        tpc = ticks_per_checkpoint
        for fault in self.faults:
            if not isinstance(fault, CorruptRecord):
                continue
            paired = [k for k in kills
                      if k.node_id == fault.node_id
                      and k.at_tick > fault.at_tick]
            if not paired:
                raise ChaosError(
                    f"corrupt record on node {fault.node_id} needs a later "
                    f"kill of that node (corruption is only observed when "
                    f"the log is replayed)")
            kill = min(paired, key=lambda k: k.at_tick)
            c, k = fault.at_tick, kill.at_tick
            if c % tpc == 0 or (k - 1) // tpc != (c - 1) // tpc:
                raise ChaosError(
                    f"a checkpoint between corruption (tick {c}) and the "
                    f"kill (tick {k}) would ack and trim the upstream "
                    f"backup of the corrupted batch; keep both inside one "
                    f"{tpc}-tick checkpoint window")


def random_fault_plan(seed: int, ticks: int, num_nodes: int,
                      streams: Sequence[str],
                      ticks_per_checkpoint: int = 10) -> FaultPlan:
    """Draw one deterministic fault plan for a ``ticks``-tick run.

    ``seed % 4`` selects the primary fault kind (0 kill, 1 message delay
    or drop, 2 straggler, 3 corrupt-then-kill); every other choice comes
    from :func:`~repro.sim.rng.stable_rng`, so the same seed always yields
    the same plan, in any process.
    """
    if ticks < 4 * ticks_per_checkpoint:
        raise ChaosError(
            f"need >= {4 * ticks_per_checkpoint} ticks for a meaningful "
            f"plan: {ticks}")
    rng = stable_rng(seed, "fault-plan", ticks, num_nodes, *streams)
    kind = seed % 4
    faults: List[Fault] = []
    if kind == 0:
        at = rng.randrange(5, ticks - 12)
        faults.append(KillNode(
            at_tick=at, node_id=rng.randrange(num_nodes),
            down_ticks=rng.randrange(2, 7),
            after_batches=rng.choice((0, 0, 1, 2))))
    elif kind == 1:
        stream = streams[rng.randrange(len(streams))]
        batch_no = rng.randrange(5, ticks - 10)
        if (seed // 4) % 2 == 0:
            faults.append(DelayMessage(stream=stream, batch_no=batch_no,
                                       hold_ticks=rng.randrange(1, 5)))
        else:
            faults.append(DropMessage(stream=stream, batch_no=batch_no,
                                      detect_ticks=rng.randrange(1, 5)))
    elif kind == 2:
        faults.append(Straggler(
            at_tick=rng.randrange(5, ticks - 12),
            node_id=rng.randrange(num_nodes),
            factor=1.5 + rng.randrange(0, 26) / 10.0,
            duration_ticks=rng.randrange(3, 10)))
    else:
        tpc = ticks_per_checkpoint
        window = rng.randrange(1, (ticks - 12) // tpc)
        corrupt_tick = window * tpc + rng.randrange(2, tpc - 4)
        kill_tick = rng.randrange(corrupt_tick + 1, (window + 1) * tpc)
        node_id = rng.randrange(num_nodes)
        faults.append(CorruptRecord(at_tick=corrupt_tick, node_id=node_id))
        faults.append(KillNode(at_tick=kill_tick, node_id=node_id,
                               down_ticks=rng.randrange(2, 6)))
    plan = FaultPlan(faults=faults, name=f"seed{seed}", seed=seed)
    plan.validate(num_nodes, streams, ticks,
                  ticks_per_checkpoint=ticks_per_checkpoint)
    return plan
