"""Deterministic chaos: scheduled fault injection for the simulated engine.

The chaos harness drives the fault-tolerance machinery of §5 under
adversarial timing, deterministically: a :class:`~repro.chaos.plan.FaultPlan`
schedules node kills (optionally mid-batch), in-flight message delays and
drops, server stragglers and log-record corruption at exact simulated
ticks, and a :class:`~repro.chaos.controller.ChaosController` applies them
through hooks in the engine.  Because every choice flows from the seeded
RNG and every effect lands at a scheduled simulated time, a chaos run is
exactly reproducible — and comparable, bit for bit, against a never-faulted
replay of the same workload (:mod:`repro.chaos.harness`).
"""

from repro.chaos.controller import ChaosController, ChaosEvent
from repro.chaos.harness import (EquivalenceReport, chaos_run_facts,
                                 run_equivalence)
from repro.chaos.plan import (CorruptRecord, DelayMessage, DropMessage,
                              FaultPlan, KillNode, Straggler,
                              random_fault_plan)
from repro.chaos.state import digest_sha256, engine_state_digest

__all__ = [
    "ChaosController", "ChaosEvent", "CorruptRecord", "DelayMessage",
    "DropMessage", "EquivalenceReport", "FaultPlan", "KillNode",
    "Straggler", "chaos_run_facts", "digest_sha256",
    "engine_state_digest", "random_fault_plan", "run_equivalence",
]
