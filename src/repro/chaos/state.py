"""Deep, JSON-safe digests of an engine's queryable state.

:func:`engine_state_digest` captures everything that determines query
answers — per-shard value lists with their snapshot numbers, shard index
vertices, stream-index slices and spans, transient slices, the
coordinator's vector timestamps / SN plan, and delivery bookkeeping — as a
canonical nested structure of plain JSON types.  Two engines with equal
digests answer every query identically, at every snapshot; the
recovery-equivalence invariant is ``digest(faulted+recovered) ==
digest(never_faulted)``.

Deliberately excluded: anything that is *allowed* to differ after a heal —
latency meters, GC eviction counters (a recovered node's rebuilt transient
store re-collects slices the original collected incrementally), checkpoint
pause bookkeeping, and the chaos chronicle itself.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List

from repro.core.engine import WukongSEngine


def _shard_digest(shard) -> dict:
    values = {}
    for key in sorted(shard._values):
        entry = shard._values[key]
        values[str(key)] = [list(entry.vids), list(entry.sns)]
    index = {f"{eid}:{d}": list(vids)
             for (eid, d), vids in sorted(shard._index.items())}
    return {"values": values, "index": index}


def _stream_index_digest(index) -> dict:
    slices = []
    for piece in index._slices:
        entries = {}
        for key in sorted(piece.entries):
            entries[str(key)] = [[owner, span.offset, span.length]
                                 for owner, span in piece.entries[key]]
        vertices = {f"{eid}:{d}": sorted(members)
                    for (eid, d), members in sorted(piece.vertices.items())}
        slices.append({"batch_no": piece.batch_no, "entries": entries,
                       "vertices": vertices})
    return {"slices": slices, "batch_nos": list(index._batch_nos),
            "collected_before": index.collected_before}


def _transient_digest(store) -> dict:
    slices = []
    for piece in store._slices:
        kv = {str(key): list(vals)
              for key, vals in sorted(piece.kv.items())}
        subjects = {f"{eid}:{d}": sorted(members)
                    for (eid, d), members in sorted(piece.subjects.items())}
        slices.append({"batch_no": piece.batch_no, "kv": kv,
                       "subjects": subjects,
                       "num_tuples": piece.num_tuples})
    return {"slices": slices, "expired_floor": store._expired_floor}


def engine_state_digest(engine: WukongSEngine) -> Dict:
    """The engine's complete queryable state as canonical JSON types."""
    coordinator = engine.coordinator
    digest = {
        "clock_ms": engine.clock.now_ms,
        "shards": [_shard_digest(shard) for shard in engine.store.shards],
        "stream_indexes": {
            stream: _stream_index_digest(engine.registry.index(stream))
            for stream in engine.registry.streams
        },
        "replicas": {stream: sorted(engine.registry.replicas(stream))
                     for stream in engine.registry.streams},
        "transients": {
            stream: [_transient_digest(store) for store in stores]
            for stream, stores in sorted(engine.transients.items())
        },
        "coordinator": {
            "local_vts": [dict(sorted(vts.as_dict().items()))
                          for vts in coordinator.local_vts],
            "local_sn": list(coordinator.local_sn),
            "stable_sn": coordinator.stable_sn,
            "compacted_through": coordinator.compacted_through,
            "plan_latest_sn": coordinator.plan.latest_sn,
            "plan_mappings": [dict(sorted(m.upper.items()))
                              for m in coordinator.plan._mappings],
        },
        "last_delivered": dict(sorted(engine._last_delivered.items())),
        "queries": {
            name: {"home_node": handle.home_node,
                   "next_close_ms": handle.next_close_ms,
                   "executions": len(handle.executions)}
            for name, handle in sorted(engine.continuous.queries.items())
        },
    }
    return digest


def digest_sha256(digest: Dict) -> str:
    """A stable fingerprint of a digest (golden files store this)."""
    canonical = json.dumps(digest, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def diff_digests(a: Dict, b: Dict, prefix: str = "") -> List[str]:
    """Human-readable paths where two digests disagree (first ~20)."""
    problems: List[str] = []

    def walk(x, y, path):
        if len(problems) >= 20:
            return
        if type(x) is not type(y):
            problems.append(f"{path}: type {type(x).__name__} vs "
                            f"{type(y).__name__}")
        elif isinstance(x, dict):
            for key in sorted(set(x) | set(y)):
                if key not in x:
                    problems.append(f"{path}.{key}: missing on left")
                elif key not in y:
                    problems.append(f"{path}.{key}: missing on right")
                else:
                    walk(x[key], y[key], f"{path}.{key}")
        elif isinstance(x, list):
            if len(x) != len(y):
                problems.append(f"{path}: length {len(x)} vs {len(y)}")
            for i, (xi, yi) in enumerate(zip(x, y)):
                walk(xi, yi, f"{path}[{i}]")
        elif x != y:
            problems.append(f"{path}: {x!r} vs {y!r}")

    walk(a, b, prefix or "digest")
    return problems
