"""The chaos controller: executing a FaultPlan against a live engine.

The controller attaches to one engine (``engine.chaos = controller``) and
drives its fault hooks:

* :meth:`ChaosController.on_tick` runs at the top of every
  :meth:`~repro.core.engine.WukongSEngine.step` — heals and releases first
  (recoveries, hold expiries, straggle ends), then new faults;
* :meth:`intercept_delivery` sees every batch a source hands the engine
  and may hold or drop it in flight;
* :meth:`admit_injection` is consulted between batch injections and is
  where an armed mid-tick kill fires;
* :meth:`blocks_progress` / :meth:`suppresses_padding` keep the engine
  globally stalled (and un-padded) while a message fault is outstanding,
  preserving the global injection order that recovery equivalence needs.

Everything the controller does is chronicled in :attr:`events` (JSON-safe,
golden-recordable), and every simulated cost it causes — replay transfers
for dropped batches, the whole recovery path — lands on the controller's
own meter (or the per-recovery report meters), never on injection records
or query meters: a healed run's healthy-path latencies stay comparable to
a never-faulted run's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chaos.plan import (CorruptRecord, DelayMessage, DropMessage,
                              FaultPlan, KillNode, Straggler)
from repro.core.checkpoint import RecoveryReport, batch_checksum
from repro.core.dispatcher import NodeBatch
from repro.errors import ChaosError
from repro.rdf.terms import EncodedTuple
from repro.sim.cost import LatencyMeter
from repro.streams.stream import StreamBatch


@dataclass
class ChaosEvent:
    """One thing the controller did, at one simulated instant."""

    tick: int
    at_ms: int
    kind: str
    detail: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"tick": self.tick, "at_ms": self.at_ms, "kind": self.kind,
                "detail": dict(sorted(self.detail.items()))}


def _tampered_copy(node_batch: NodeBatch) -> NodeBatch:
    """A corrupted copy of a node batch (the original is never mutated).

    The store holds references into the original batch's tuple objects, so
    in-place tampering would corrupt *live healthy state* on other nodes;
    instead the log entry is pointed at a copy whose first tuple has a
    flipped timestamp.
    """
    groups = {name: list(getattr(node_batch, name))
              for name in ("out_timeless", "in_timeless",
                           "out_timing", "in_timing")}
    for name, tuples in groups.items():
        if tuples:
            first = tuples[0]
            tuples[0] = EncodedTuple(first.triple, first.timestamp_ms ^ 1)
            break
    return NodeBatch(stream=node_batch.stream, batch_no=node_batch.batch_no,
                     node_id=node_batch.node_id, **groups)


class ChaosController:
    """Deterministic fault injection for one engine run."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.engine = None
        #: Costs of the chaos/recovery path (replay transfers, recoveries).
        self.meter = LatencyMeter()
        self.events: List[ChaosEvent] = []
        self.reports: List[RecoveryReport] = []
        #: Simulated time of the first fault effect / last heal (None until
        #: one happens); the equivalence harness derives its opaque window
        #: from these.
        self.first_fault_ms: Optional[int] = None
        self.heal_ms: Optional[int] = None
        self._tick = 0

        self._kills_at: Dict[int, List[KillNode]] = {}
        self._recovers_at: Dict[int, List[int]] = {}
        self._straggle_on: Dict[int, List[Straggler]] = {}
        self._straggle_off: Dict[int, List[int]] = {}
        self._corrupts_at: Dict[int, List[CorruptRecord]] = {}
        self._delays: Dict[Tuple[str, int], DelayMessage] = {}
        self._drops: Dict[Tuple[str, int], DropMessage] = {}
        #: stream -> [(release tick, batch)], kept sorted by batch number.
        self._held: Dict[str, List[Tuple[int, StreamBatch]]] = {}
        #: stream -> [(detect tick, batch_no)], kept sorted by batch number.
        self._lost: Dict[str, List[Tuple[int, int]]] = {}
        self._armed_kill: Optional[Tuple[KillNode, int]] = None

        for fault in plan.faults:
            if isinstance(fault, KillNode):
                self._kills_at.setdefault(fault.at_tick, []).append(fault)
            elif isinstance(fault, DelayMessage):
                self._delays[(fault.stream, fault.batch_no)] = fault
            elif isinstance(fault, DropMessage):
                self._drops[(fault.stream, fault.batch_no)] = fault
            elif isinstance(fault, Straggler):
                self._straggle_on.setdefault(fault.at_tick, []).append(fault)
            elif isinstance(fault, CorruptRecord):
                self._corrupts_at.setdefault(fault.at_tick, []).append(fault)
            else:
                raise ChaosError(f"unknown fault type: {fault!r}")

    # -- attachment -------------------------------------------------------
    def attach(self, engine, ticks: Optional[int] = None) -> None:
        """Validate the plan against ``engine`` and hook in."""
        if engine.checkpoints is None and (self._kills_at
                                           or self._corrupts_at):
            raise ChaosError(
                "kill/corrupt faults need fault_tolerance=True in "
                "EngineConfig (recovery replays the durable log)")
        cfg = engine.config
        tpc = max(1, cfg.checkpoint_interval_ms // cfg.batch_interval_ms)
        horizon = ticks if ticks is not None else 1 << 30
        self.plan.validate(cfg.num_nodes, list(engine.schemas), horizon,
                           ticks_per_checkpoint=tpc)
        for stream, _ in list(self._delays) + list(self._drops):
            if stream not in engine.schemas:
                raise ChaosError(f"unknown stream in plan: {stream!r}")
        self.engine = engine
        engine.chaos = self

    # -- engine hooks -------------------------------------------------------
    def blocks_progress(self) -> bool:
        """True while any message fault is outstanding: injection stalls
        *globally*, so cross-stream injection order is preserved."""
        return bool(self._held) or bool(self._lost)

    def suppresses_padding(self, stream: str) -> bool:
        """Auto-padding must not fabricate a batch that is merely in
        flight — it would collide with the release of the real one."""
        return stream in self._held or stream in self._lost

    def on_tick(self, engine, now_ms: int) -> None:
        """Apply everything scheduled for this tick: heals before faults."""
        self._tick += 1
        tick = self._tick
        if self._armed_kill is not None:
            # Armed last tick but fewer batches were injected than the
            # trigger count: fire at the top of this tick instead.
            kill, _ = self._armed_kill
            self._armed_kill = None
            self._kill_now(engine, kill, now_ms)
        for node_id in self._recovers_at.pop(tick, ()):
            report = engine.recover_node(node_id)
            self.reports.append(report)
            self.meter.add(report.meter)
            self.heal_ms = now_ms
            self._note(tick, now_ms, "recover", node_id=node_id,
                       replayed=report.replayed_entries,
                       rejected=report.rejected_entries,
                       rebuilt=list(report.rebuilt_batches))
            tracer = getattr(engine, "tracer", None)
            if tracer is not None:
                tracer.event_span(
                    "recover", "chaos", ns=report.meter.ns,
                    anchor_ms=now_ms, node_id=node_id,
                    replayed=report.replayed_entries,
                    rejected=report.rejected_entries)
        for node_id in self._straggle_off.pop(tick, ()):
            engine.injectors[node_id].slowdown = 1.0
            self._note(tick, now_ms, "straggle_off", node_id=node_id)
        self._release_due(engine, now_ms)
        for fault in self._straggle_on.pop(tick, ()):
            engine.injectors[fault.node_id].slowdown = fault.factor
            self._straggle_off.setdefault(fault.end_tick, []) \
                .append(fault.node_id)
            self._first_fault(now_ms)
            self._note(tick, now_ms, "straggle_on", node_id=fault.node_id,
                       factor=fault.factor)
        for fault in self._corrupts_at.pop(tick, ()):
            self._corrupt(engine, fault, now_ms)
        for kill in self._kills_at.pop(tick, ()):
            if kill.after_batches > 0:
                self._armed_kill = (kill, kill.after_batches)
                self._note(tick, now_ms, "arm_kill", node_id=kill.node_id,
                           after_batches=kill.after_batches)
            else:
                self._kill_now(engine, kill, now_ms)

    def intercept_delivery(self, engine, batch: StreamBatch) -> bool:
        """Hold or drop a batch the source just handed over; False lets it
        through untouched."""
        key = (batch.stream, batch.batch_no)
        now_ms = engine.clock.now_ms
        delay = self._delays.pop(key, None)
        if delay is not None:
            queue = self._held.setdefault(batch.stream, [])
            queue.append((self._tick + delay.hold_ticks, batch))
            queue.sort(key=lambda item: item[1].batch_no)
            self._first_fault(now_ms)
            self._note(self._tick, now_ms, "hold", stream=batch.stream,
                       batch_no=batch.batch_no,
                       until_tick=self._tick + delay.hold_ticks)
            return True
        drop = self._drops.pop(key, None)
        if drop is not None:
            queue = self._lost.setdefault(batch.stream, [])
            queue.append((self._tick + drop.detect_ticks, batch.batch_no))
            queue.sort(key=lambda item: item[1])
            self._first_fault(now_ms)
            self._note(self._tick, now_ms, "drop", stream=batch.stream,
                       batch_no=batch.batch_no,
                       detect_tick=self._tick + drop.detect_ticks)
            return True
        return False

    def admit_injection(self, engine) -> bool:
        """Between-batch checkpoint for armed mid-tick kills."""
        if self._armed_kill is None:
            return True
        kill, remaining = self._armed_kill
        if remaining > 0:
            self._armed_kill = (kill, remaining - 1)
            return True
        self._armed_kill = None
        self._kill_now(engine, kill, engine.clock.now_ms, mid_tick=True)
        return False

    # -- fault mechanics -----------------------------------------------------
    def _kill_now(self, engine, kill: KillNode, now_ms: int,
                  mid_tick: bool = False) -> None:
        engine.crash_node(kill.node_id)
        recover_tick = max(self._tick + 1, kill.recover_tick)
        self._recovers_at.setdefault(recover_tick, []).append(kill.node_id)
        self._first_fault(now_ms)
        self._note(self._tick, now_ms, "kill", node_id=kill.node_id,
                   mid_tick=mid_tick, recover_tick=recover_tick)

    def _release_due(self, engine, now_ms: int) -> None:
        """Release held batches and re-fetch detected losses.

        Only the longest *due prefix* in batch order is released: a held
        batch never overtakes an earlier one that is still outstanding,
        so per-stream batch order survives any hold pattern.
        """
        for stream in list(self._held):
            queue = self._held[stream]
            released: List[StreamBatch] = []
            while queue and queue[0][0] <= self._tick:
                released.append(queue.pop(0)[1])
            if not queue:
                del self._held[stream]
            for batch in released:
                self._requeue(engine, stream, batch)
                self._note(self._tick, now_ms, "release", stream=stream,
                           batch_no=batch.batch_no)
                self.heal_ms = now_ms
        for stream in list(self._lost):
            queue = self._lost[stream]
            refetched: List[StreamBatch] = []
            while queue and queue[0][0] <= self._tick:
                batch_no = queue.pop(0)[1]
                refetched.append(self._refetch(engine, stream, batch_no))
            if not queue:
                del self._lost[stream]
            for batch in refetched:
                self._requeue(engine, stream, batch)
                self._note(self._tick, now_ms, "refetch", stream=stream,
                           batch_no=batch.batch_no)
                self.heal_ms = now_ms

    @staticmethod
    def _requeue(engine, stream: str, batch: StreamBatch) -> None:
        """Slot a released batch back into pending *by batch number*.

        Pending already holds batches delivered both before the hold began
        (smaller numbers, stalled by the global freeze) and after it
        (larger numbers), so neither end of the deque is correct in
        general — the batch goes exactly where the gap is.
        """
        pending = engine._pending[stream]
        position = sum(1 for queued in pending
                       if queued.batch_no < batch.batch_no)
        pending.insert(position, batch)

    def _refetch(self, engine, stream: str, batch_no: int) -> StreamBatch:
        """Recover a dropped batch from the source's upstream backup."""
        source = engine.sources.get(stream)
        if source is None:
            raise ChaosError(f"dropped batch {stream}#{batch_no} has no "
                             f"source to re-fetch from")
        matches = [b for b in source.replay(batch_no - 1)
                   if b.batch_no == batch_no]
        if not matches:
            raise ChaosError(
                f"upstream backup of {stream} no longer holds batch "
                f"#{batch_no}; it was acknowledged while the drop was "
                f"outstanding (plan violates the no-checkpoint constraint)")
        batch = matches[0]
        payload = engine.config.memory.tuple_bytes * len(batch.tuples)
        engine.cluster.fabric.replay_transfer(self.meter, payload,
                                              category="replay")
        return batch

    def _corrupt(self, engine, fault: CorruptRecord, now_ms: int) -> None:
        """Damage the newest still-rebuildable log record of one node."""
        manager = engine.checkpoints
        candidates = []
        for entry in manager._log:
            if entry.node_id != fault.node_id:
                continue
            source = engine.sources.get(entry.node_batch.stream)
            acked = source.acked_through if source is not None else 1 << 60
            if entry.node_batch.batch_no > acked:
                candidates.append(entry)
        if not candidates:
            raise ChaosError(
                f"node {fault.node_id} has no un-acknowledged log record "
                f"to corrupt at tick {self._tick} (schedule the fault "
                f"between checkpoints)")
        entry = candidates[-1]
        if entry.node_batch.num_inserts > 0:
            entry.node_batch = _tampered_copy(entry.node_batch)
            mode = "payload"
        else:
            # An empty batch has nothing to flip; damage the stored CRC
            # instead — recovery still sees content/checksum disagreement.
            entry.checksum = (entry.checksum ^ 0x5A5A5A5A) & 0xFFFFFFFF
            mode = "checksum"
        assert batch_checksum(entry.node_batch) != entry.checksum
        self._first_fault(now_ms)
        self._note(self._tick, now_ms, "corrupt", node_id=fault.node_id,
                   stream=entry.node_batch.stream,
                   batch_no=entry.node_batch.batch_no, mode=mode)

    # -- bookkeeping -------------------------------------------------------
    def _first_fault(self, now_ms: int) -> None:
        if self.first_fault_ms is None:
            self.first_fault_ms = now_ms

    def _note(self, tick: int, at_ms: int, kind: str, **detail) -> None:
        self.events.append(ChaosEvent(tick=tick, at_ms=at_ms, kind=kind,
                                      detail=detail))

    @property
    def outstanding(self) -> int:
        """Scheduled effects not yet applied (0 once the plan has fully
        played out and healed)."""
        return (sum(len(v) for v in self._kills_at.values())
                + sum(len(v) for v in self._recovers_at.values())
                + sum(len(v) for v in self._straggle_on.values())
                + sum(len(v) for v in self._straggle_off.values())
                + sum(len(v) for v in self._corrupts_at.values())
                + len(self._delays) + len(self._drops)
                + sum(len(v) for v in self._held.values())
                + sum(len(v) for v in self._lost.values())
                + (1 if self._armed_kill is not None else 0))
