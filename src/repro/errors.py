"""Exception hierarchy shared across the Wukong+S reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(ReproError):
    """A SPARQL / C-SPARQL / RDF text could not be parsed.

    Carries the offending position when known.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class PlanError(ReproError):
    """No valid execution plan exists for a query (e.g. no constant start)."""


class StoreError(ReproError):
    """The graph store was used inconsistently (bad key, bad snapshot...)."""


class StreamError(ReproError):
    """Stream definition or ingestion failure (unknown stream, bad batch order...)."""


class ConsistencyError(ReproError):
    """A vector-timestamp / snapshot invariant would be violated."""


class RegistrationError(ReproError):
    """A continuous query could not be registered."""


class UnsupportedOperationError(ReproError):
    """An engine does not support the requested operation.

    Used by the Structured-Streaming baseline to reject stream-stream joins,
    mirroring the unsupported operations the paper reports as "x" in Table 4.
    """


class FaultToleranceError(ReproError):
    """Checkpoint / recovery failure."""


class ProxyTimeoutError(ReproError):
    """A client request exhausted its retry budget against a degraded cluster."""


class ChaosError(ReproError):
    """A fault plan is malformed or cannot be applied to this engine."""
