"""Exception hierarchy shared across the Wukong+S reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(ReproError):
    """A SPARQL / C-SPARQL / RDF text could not be parsed.

    Carries the offending position when known.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class PlanError(ReproError):
    """No valid execution plan exists for a query (e.g. no constant start)."""


class StoreError(ReproError):
    """The graph store was used inconsistently (bad key, bad snapshot...)."""


class StreamError(ReproError):
    """Stream definition or ingestion failure (unknown stream, bad batch order...)."""


class ConsistencyError(ReproError):
    """A vector-timestamp / snapshot invariant would be violated."""


class RegistrationError(ReproError):
    """A continuous query could not be registered."""


class UnsupportedOperationError(ReproError):
    """An engine does not support the requested operation.

    Used by the Structured-Streaming baseline to reject stream-stream joins,
    mirroring the unsupported operations the paper reports as "x" in Table 4.
    """


class FaultToleranceError(ReproError):
    """Checkpoint / recovery failure."""


class ProxyTimeoutError(ReproError):
    """A client request exhausted its retry budget against a degraded cluster."""


class AdmissionError(ReproError):
    """The serving layer rejected a request at admission.

    Admission control never drops work silently: a request the serving
    layer cannot take on is refused *at submission time* with a subclass
    of this error naming the exhausted budget, so the client can shed
    load, retry later, or go to another cell.
    """

    def __init__(self, message: str, tenant: str = "",
                 budget: int = 0, in_use: int = 0):
        self.tenant = tenant
        self.budget = budget
        self.in_use = in_use
        super().__init__(message)


class RegistrationAdmissionError(AdmissionError):
    """A continuous-query registration exceeded a registration budget
    (total subscriptions, distinct shared plans, or one tenant's share)."""


class BacklogAdmissionError(AdmissionError):
    """A one-shot submission exceeded a backlog budget (total queued
    requests or one tenant's queue depth)."""


class TemporalError(ReproError):
    """A SPARQL-T temporal query cannot be answered as asked.

    Like admission control, the temporal subsystem never returns silently
    wrong or silently empty results: a snapshot the version chains can no
    longer (or not yet) reconstruct is refused with a subclass of this
    error naming the offending snapshot and the valid range, so the
    client can re-ask at a readable snapshot.
    """

    def __init__(self, message: str, snapshot: int = 0,
                 frontier: int = 0, stable: int = 0):
        self.snapshot = snapshot
        self.frontier = frontier
        self.stable = stable
        super().__init__(message)


class SnapshotBelowGCFrontierError(TemporalError):
    """The requested snapshot predates the GC frontier: bounded
    scalarization has folded its version segments into the base snapshot,
    so a read at it would silently see later entries."""


class SnapshotNotYetStableError(TemporalError):
    """The requested snapshot is above the cluster's stable SN: some node
    has not finished inserting the batches the snapshot would cover."""


class InvalidIntervalError(TemporalError):
    """A valid-time interval is malformed (e.g. an empty or inverted
    ``[ts, te)``, or a non-integer constant endpoint)."""


class ChaosError(ReproError):
    """A fault plan is malformed or cannot be applied to this engine."""
