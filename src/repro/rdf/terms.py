"""RDF terms, triples and timed stream tuples.

The linked data is represented as RDF triples ``<subject, predicate,
object>``.  Streaming data arrives as *timed tuples*: a triple plus its
source timestamp, e.g. ``<Logan, po, T-15> @ 0802`` (Fig. 1 of the paper).
Terms are plain strings at the API boundary; internally every term is
converted to a compact integer ID by the :class:`~repro.rdf.StringServer`.
"""

from __future__ import annotations

from typing import NamedTuple


class Triple(NamedTuple):
    """One RDF triple of string terms."""

    subject: str
    predicate: str
    object: str

    def __str__(self) -> str:
        return f"<{self.subject}, {self.predicate}, {self.object}>"


class TimedTuple(NamedTuple):
    """One stream tuple: a triple with its source timestamp (simulated ms)."""

    triple: Triple
    timestamp_ms: int

    def __str__(self) -> str:
        return f"{self.triple} @{self.timestamp_ms}"


class EncodedTriple(NamedTuple):
    """A triple after string->ID conversion: (subject vid, predicate eid, object vid)."""

    s: int
    p: int
    o: int


class EncodedTuple(NamedTuple):
    """An encoded triple plus its timestamp, as handled by the data path."""

    triple: EncodedTriple
    timestamp_ms: int
