"""RDF data model: terms, triples, timed tuples, IDs and the string server."""

from repro.rdf.terms import Triple, TimedTuple
from repro.rdf.ids import (
    INDEX_VID,
    DIR_IN,
    DIR_OUT,
    MAX_VID,
    MAX_EID,
    Key,
    make_key,
    split_key,
    index_key,
)
from repro.rdf.string_server import StringServer
from repro.rdf.parser import parse_triples, parse_timed_tuples

__all__ = [
    "Triple",
    "TimedTuple",
    "INDEX_VID",
    "DIR_IN",
    "DIR_OUT",
    "MAX_VID",
    "MAX_EID",
    "Key",
    "make_key",
    "split_key",
    "index_key",
    "StringServer",
    "parse_triples",
    "parse_timed_tuples",
]
