"""The string server: bidirectional string <-> ID mapping.

As in Wukong, clients never ship long strings to the servers; each term is
first converted to a compact integer ID by a shared string server, saving
network bandwidth.  Entities and predicates live in distinct ID spaces
(predicates become edge IDs, entities become vertex IDs).  Vertex ID 0 is
reserved for index vertices, so entity IDs start at 1.

The paper notes that the mapping table skips garbage collection entirely —
one-shot queries may refer to any entity at any time — and so does this
implementation: IDs are never reclaimed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import StoreError
from repro.rdf.ids import INDEX_VID, MAX_EID, MAX_VID
from repro.rdf.terms import EncodedTriple, EncodedTuple, TimedTuple, Triple


class StringServer:
    """Assigns and resolves entity vids and predicate eids.

    >>> server = StringServer()
    >>> logan = server.entity_id("Logan")
    >>> server.entity_id("Logan") == logan
    True
    >>> server.entity_name(logan)
    'Logan'
    """

    def __init__(self) -> None:
        self._entity_ids: Dict[str, int] = {}
        self._entity_names: List[Optional[str]] = [None]  # vid 0 = INDEX
        self._predicate_ids: Dict[str, int] = {}
        self._predicate_names: List[Optional[str]] = [None]  # eid 0 reserved

    # -- allocation / lookup -------------------------------------------
    def entity_id(self, name: str) -> int:
        """Return the vid for ``name``, allocating one on first sight."""
        vid = self._entity_ids.get(name)
        if vid is None:
            vid = len(self._entity_names)
            if vid > MAX_VID:
                raise StoreError("entity ID space exhausted (46-bit)")
            self._entity_ids[name] = vid
            self._entity_names.append(name)
        return vid

    def predicate_id(self, name: str) -> int:
        """Return the eid for predicate ``name``, allocating on first sight."""
        eid = self._predicate_ids.get(name)
        if eid is None:
            eid = len(self._predicate_names)
            if eid > MAX_EID:
                raise StoreError("predicate ID space exhausted (17-bit)")
            self._predicate_ids[name] = eid
            self._predicate_names.append(name)
        return eid

    def lookup_entity(self, name: str) -> Optional[int]:
        """The vid for ``name`` if already known, else None (no allocation)."""
        return self._entity_ids.get(name)

    def lookup_predicate(self, name: str) -> Optional[int]:
        """The eid for ``name`` if already known, else None (no allocation)."""
        return self._predicate_ids.get(name)

    # -- reverse lookup -------------------------------------------------
    def entity_name(self, vid: int) -> str:
        """The string for a vid; raises for the index vertex or unknown ids."""
        if vid == INDEX_VID:
            raise StoreError("vid 0 is the reserved index vertex")
        if not 0 < vid < len(self._entity_names):
            raise StoreError(f"unknown entity vid: {vid}")
        name = self._entity_names[vid]
        assert name is not None
        return name

    def predicate_name(self, eid: int) -> str:
        """The string for an eid; raises for unknown ids."""
        if not 0 < eid < len(self._predicate_names):
            raise StoreError(f"unknown predicate eid: {eid}")
        name = self._predicate_names[eid]
        assert name is not None
        return name

    # -- bulk encoding ----------------------------------------------------
    def encode_triple(self, triple: Triple) -> EncodedTriple:
        """Encode one triple, allocating IDs as needed.

        The known-term path (the common case on a warm server) is inlined
        dict probes; only first-sighted terms take the allocating call.
        """
        entity_ids = self._entity_ids
        s = entity_ids.get(triple.subject)
        if s is None:
            s = self.entity_id(triple.subject)
        p = self._predicate_ids.get(triple.predicate)
        if p is None:
            p = self.predicate_id(triple.predicate)
        o = entity_ids.get(triple.object)
        if o is None:
            o = self.entity_id(triple.object)
        return EncodedTriple(s, p, o)

    def encode_tuple(self, tup: TimedTuple) -> EncodedTuple:
        """Encode one timed tuple, allocating IDs as needed."""
        return EncodedTuple(self.encode_triple(tup.triple), tup.timestamp_ms)

    def encode_triples(self, triples: Iterable[Triple]) -> List[EncodedTriple]:
        """Encode a batch of triples."""
        return [self.encode_triple(t) for t in triples]

    def decode_triple(self, enc: EncodedTriple) -> Triple:
        """Decode an encoded triple back to strings."""
        return Triple(
            self.entity_name(enc.s),
            self.predicate_name(enc.p),
            self.entity_name(enc.o),
        )

    # -- stats -------------------------------------------------------------
    @property
    def num_entities(self) -> int:
        return len(self._entity_names) - 1

    @property
    def num_predicates(self) -> int:
        return len(self._predicate_names) - 1
