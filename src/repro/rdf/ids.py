"""ID encoding for the graph store, following Wukong's layout.

The base store keys are the combination of vertex ID (``vid``), edge/
predicate ID (``eid``) and direction (``d``), written ``[vid|eid|d]`` in the
paper (Fig. 6).  Wukong+S uses 46-bit vids (over 70 trillion entities); we
pack keys as ``(vid << 18) | (eid << 1) | d`` into one Python int, keeping
17 bits for the predicate ID.

Vertex 0 is reserved for *index vertices*: the key ``[0|p|d]`` maps a
predicate to every normal vertex that has a ``d``-direction edge labelled
``p`` — the reverse mapping queries use when no constant vertex is known.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import StoreError

#: Reserved vid used for predicate-index vertices ([0|eid|d] keys).
INDEX_VID = 0

#: Direction of the edge relative to the key's vertex.
DIR_IN = 0
DIR_OUT = 1

#: 46-bit vertex IDs, as in the paper (>70 trillion unique entities).
MAX_VID = (1 << 46) - 1
#: 17-bit predicate IDs.
MAX_EID = (1 << 17) - 1

_EID_SHIFT = 1
_VID_SHIFT = 18

#: Type alias for a packed store key.
Key = int


def make_key(vid: int, eid: int, d: int) -> Key:
    """Pack ``[vid|eid|d]`` into one integer key."""
    if not 0 <= vid <= MAX_VID:
        raise StoreError(f"vid out of range: {vid}")
    if not 0 <= eid <= MAX_EID:
        raise StoreError(f"eid out of range: {eid}")
    if d not in (DIR_IN, DIR_OUT):
        raise StoreError(f"direction must be DIR_IN or DIR_OUT, got {d}")
    return (vid << _VID_SHIFT) | (eid << _EID_SHIFT) | d


def split_key(key: Key) -> Tuple[int, int, int]:
    """Unpack a key into ``(vid, eid, d)``."""
    if key < 0:
        raise StoreError(f"invalid key: {key}")
    return key >> _VID_SHIFT, (key >> _EID_SHIFT) & MAX_EID, key & 1


def index_key(eid: int, d: int) -> Key:
    """The index-vertex key ``[0|eid|d]`` for predicate ``eid``.

    Direction follows the paper's convention: ``index_key(p, DIR_IN)``
    lists the vertices with an *in*-edge labelled ``p`` (e.g. all posts for
    predicate ``po`` in Fig. 6).
    """
    return make_key(INDEX_VID, eid, d)


def key_vid(key: Key) -> int:
    """The vertex component of a key (used for hash partitioning)."""
    return key >> _VID_SHIFT
