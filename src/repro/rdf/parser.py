"""Minimal RDF text parsing.

Two line-oriented formats are supported, enough to load static datasets and
stream traces in tests and examples:

* triples — ``subject predicate object .`` (the final dot is optional);
* timed tuples — ``subject predicate object @timestamp`` with an integer
  timestamp in simulated milliseconds.

Blank lines and ``#`` comments are skipped.  Terms are bare words or
``<...>``-delimited IRIs (the delimiters are stripped); quoted literals keep
internal spaces.
"""

from __future__ import annotations

import shlex
from typing import Iterable, List

from repro.errors import ParseError
from repro.rdf.terms import TimedTuple, Triple


def _split_terms(line: str, lineno: int) -> List[str]:
    try:
        parts = shlex.split(line, comments=False)
    except ValueError as exc:
        raise ParseError(f"bad quoting: {exc}", line=lineno) from exc
    return [p[1:-1] if p.startswith("<") and p.endswith(">") else p for p in parts]


def parse_triples(text: str) -> List[Triple]:
    """Parse newline-separated triples.

    >>> parse_triples("Logan fo Erik .\\nLogan po T-13")
    [Triple(subject='Logan', predicate='fo', object='Erik'), \
Triple(subject='Logan', predicate='po', object='T-13')]
    """
    triples: List[Triple] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        terms = _split_terms(line, lineno)
        if terms and terms[-1] == ".":
            terms = terms[:-1]
        if len(terms) != 3:
            raise ParseError(
                f"expected 3 terms, got {len(terms)}: {line!r}", line=lineno)
        triples.append(Triple(*terms))
    return triples


def parse_timed_tuples(text: str) -> List[TimedTuple]:
    """Parse newline-separated timed tuples (``s p o @ts``).

    >>> parse_timed_tuples("Logan po T-15 @802")
    [TimedTuple(triple=Triple(subject='Logan', predicate='po', object='T-15'), timestamp_ms=802)]
    """
    tuples: List[TimedTuple] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        terms = _split_terms(line, lineno)
        if len(terms) != 4 or not terms[3].startswith("@"):
            raise ParseError(
                f"expected 's p o @ts', got: {line!r}", line=lineno)
        stamp_text = terms[3][1:]
        try:
            stamp = int(stamp_text)
        except ValueError as exc:
            raise ParseError(
                f"bad timestamp {stamp_text!r}", line=lineno) from exc
        tuples.append(TimedTuple(Triple(terms[0], terms[1], terms[2]), stamp))
    return tuples


def format_triples(triples: Iterable[Triple]) -> str:
    """Render triples back to the line format accepted by parse_triples."""
    return "\n".join(f"{t.subject} {t.predicate} {t.object} ." for t in triples)
