"""Wukong+S reproduction: sub-millisecond stateful stream querying over
fast-evolving linked data (SOSP 2017).

Public entry points:

* :class:`repro.core.engine.WukongSEngine` — the integrated engine
  (continuous C-SPARQL + one-shot SPARQL over a hybrid store);
* :mod:`repro.baselines` — every comparison system from the paper;
* :mod:`repro.bench` — LSBench / CityBench generators and the experiment
  harness.
"""

from repro.core.engine import EngineConfig, WukongSEngine
from repro.sparql.parser import parse_query
from repro.streams.source import StreamSource
from repro.streams.stream import StreamSchema

__version__ = "1.0.0"

__all__ = [
    "WukongSEngine",
    "EngineConfig",
    "parse_query",
    "StreamSource",
    "StreamSchema",
    "__version__",
]
