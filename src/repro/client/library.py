"""The client library: text in, decoded results out.

Wraps a :class:`~repro.core.engine.WukongSEngine` endpoint with the
client-side responsibilities of §3:

* parse query text into cached stored procedures;
* resolve constant strings to IDs through the string server (one round
  trip per *new* constant — long strings never travel with queries);
* submit one-shot queries / register continuous ones;
* decode result vids back to strings for the application.

Latencies reported to the client optionally include the client<->server
round trip (``include_network``); the paper's tables report server-side
latency, which remains available as ``server_latency_ms``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.client.procedures import ProcedureCache, StoredProcedure
from repro.core.continuous import RegisteredQuery
from repro.core.engine import WukongSEngine
from repro.sim.cost import LatencyMeter

#: Approximate request/response payload sizes (bytes).
_REQUEST_BYTES = 96
_ROW_BYTES = 48


@dataclass
class ClientResult:
    """A decoded one-shot answer."""

    columns: List[str]
    rows: List[Tuple[object, ...]]
    server_latency_ms: float
    client_latency_ms: float
    snapshot: int

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class ClientSubscription:
    """A registered continuous query, with incremental result delivery."""

    library: "ClientLibrary"
    procedure: StoredProcedure
    handle: RegisteredQuery
    _delivered: int = 0
    _gaps_delivered: int = 0

    def poll(self) -> List[ClientResult]:
        """Decode executions completed since the last poll."""
        out: List[ClientResult] = []
        new = self.handle.executions[self._delivered:]
        self._delivered = len(self.handle.executions)
        for record in new:
            out.append(self.library._decode(
                self.procedure, record.result, record.meter,
                self.library.engine.coordinator.stable_sn))
        return out

    def poll_gaps(self) -> List:
        """Gap markers noted since the last call (graceful degradation).

        While the cluster is degraded the engine reports each missed
        window close as a :class:`~repro.core.continuous.GapMarker`
        instead of silently skipping it; the marker's ``resolved_ms`` is
        filled in (on the same object) once recovery catches up and the
        late execution is delivered through :meth:`poll`.
        """
        new = self.handle.gaps[self._gaps_delivered:]
        self._gaps_delivered = len(self.handle.gaps)
        return list(new)

    @property
    def name(self) -> str:
        return self.handle.name


class ClientLibrary:
    """One client's connection to the engine."""

    def __init__(self, engine: WukongSEngine, client_id: str = "client0",
                 include_network: bool = True):
        self.engine = engine
        self.client_id = client_id
        self.include_network = include_network
        self.cache = ProcedureCache()
        self._known_constants: set = set()
        self.string_server_roundtrips = 0

    # -- submission ------------------------------------------------------
    def submit(self, text: str,
               home_node: Optional[int] = None) -> ClientResult:
        """Execute a one-shot query and decode its answer."""
        procedure = self.prepare(text)
        if procedure.is_continuous:
            raise ValueError(
                "continuous queries must be registered, not submitted; "
                "use register()")
        record = self.engine.oneshot(procedure.query, home_node=home_node)
        return self._decode(procedure, record.result, record.meter,
                            record.snapshot)

    def register(self, text: str,
                 home_node: Optional[int] = None) -> ClientSubscription:
        """Register a continuous query; poll the subscription for results."""
        procedure = self.prepare(text)
        if not procedure.is_continuous:
            raise ValueError("one-shot queries are submitted, not "
                             "registered; use submit()")
        handle = self.engine.register_continuous(procedure.query,
                                                 home_node=home_node)
        return ClientSubscription(library=self, procedure=procedure,
                                  handle=handle)

    def subscribe(self, procedure: StoredProcedure,
                  handle: RegisteredQuery) -> ClientSubscription:
        """Multiplex a subscription onto an existing registration.

        The serving layer's common-subplan sharing registers *one* backing
        continuous query per distinct normalized AST + window spec and
        fans each window close out to every subscriber: each subscription
        returned here keeps its own delivery cursor over the shared
        handle's executions, so N clients read the same execution records
        independently — one evaluation, N deliveries.
        """
        if not procedure.is_continuous:
            raise ValueError("one-shot procedures cannot subscribe to a "
                             "continuous registration")
        return ClientSubscription(library=self, procedure=procedure,
                                  handle=handle)

    # -- client-side steps --------------------------------------------------
    def prepare(self, text: str) -> StoredProcedure:
        """Parse (cached) and resolve new constants via the string server."""
        procedure = self.cache.get(text)
        fresh = [c for c in procedure.constants()
                 if c not in self._known_constants]
        if fresh:
            # One batched round trip resolves all new strings to IDs.
            self.string_server_roundtrips += 1
            self._known_constants.update(fresh)
        return procedure

    def _decode(self, procedure: StoredProcedure, result, meter,
                snapshot: int) -> ClientResult:
        """Decode vids to strings; aggregate values pass through."""
        strings = self.engine.strings
        group_width = len(procedure.query.group_by)
        decoded: List[Tuple[object, ...]] = []
        for row in result.rows:
            out_row: List[object] = []
            for index, value in enumerate(row):
                if procedure.query.aggregates and index >= group_width:
                    out_row.append(value)  # aggregate: already a value
                elif isinstance(value, int) and value > 0:
                    out_row.append(strings.entity_name(value))
                else:
                    out_row.append(None)
            decoded.append(tuple(out_row))
        client_meter = LatencyMeter()
        client_meter.charge(meter.ns)
        if self.include_network:
            payload = _REQUEST_BYTES + _ROW_BYTES * len(result.rows)
            self.engine.cluster.fabric.message(client_meter, payload,
                                               category="client")
        return ClientResult(
            columns=list(result.variables), rows=decoded,
            server_latency_ms=meter.ms,
            client_latency_ms=client_meter.ms, snapshot=snapshot)
