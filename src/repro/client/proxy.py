"""Dedicated proxies: running the client library near the cluster.

"Alternatively, Wukong+S can use a set of dedicated proxies to run the
client-side library and balance client requests" (§3).  A
:class:`ProxyPool` spreads one-shot submissions across proxies (and the
proxies spread them across server nodes), so a massive client population
never funnels through one node.  Each proxy shares one procedure cache
across all the clients it fronts — the multiplexing benefit of proxies.

Robustness semantics (§5's client-visible side): a request against a
degraded cluster is *not* executed — a dead node's shard is empty, so the
answer would be silently partial.  Instead the request times out (a
per-request budget in simulated ns), and the proxy retries it with bounded
exponential backoff and full jitter drawn from the seeded deterministic
RNG.  Once the cluster heals — e.g. after ``recover_node`` replays the
durable log — the retry succeeds and the client sees the complete answer,
with the waiting time folded into its client-side latency.  Requests that
exhaust their attempt budget fail explicitly with
:class:`~repro.errors.ProxyTimeoutError`, never silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.client.library import ClientLibrary, ClientResult, \
    ClientSubscription
from repro.core.engine import WukongSEngine
from repro.errors import ProxyTimeoutError
from repro.sim.rng import stable_rng


@dataclass
class RetryPolicy:
    """Timeout/backoff tunables of one proxy (simulated nanoseconds)."""

    #: Per-attempt budget before the request is declared timed out.
    timeout_ns: float = 2_000_000.0
    #: First backoff; doubles each attempt (bounded exponential).
    backoff_base_ns: float = 250_000.0
    #: Backoff ceiling.
    backoff_cap_ns: float = 8_000_000.0
    #: Attempts before giving up (the first submission counts as one).
    max_attempts: int = 64

    def backoff_ns(self, attempt: int, rng) -> float:
        """Jittered backoff before attempt ``attempt + 1`` (full jitter:
        uniform in [cap/2, cap], from the seeded RNG only)."""
        cap = min(self.backoff_cap_ns,
                  self.backoff_base_ns * (2 ** max(0, attempt - 1)))
        return cap * (0.5 + 0.5 * rng.random())


@dataclass
class PendingRequest:
    """One client request being retried against a degraded cluster."""

    text: str
    submitted_ms: float
    attempts: int = 0
    #: Simulated ns spent waiting so far (timeouts + backoffs).
    waited_ns: float = 0.0
    #: Backoff durations drawn so far (ns), for observability.
    backoffs_ns: List[float] = field(default_factory=list)
    #: Simulated time before which no retry fires.
    next_attempt_ms: float = 0.0
    result: Optional[ClientResult] = None
    failed: bool = False

    @property
    def done(self) -> bool:
        return self.result is not None or self.failed

    @property
    def waited_ms(self) -> float:
        return self.waited_ns / 1e6


@dataclass
class ProxyStats:
    """Request counters for one proxy."""

    oneshot_requests: int = 0
    registrations: int = 0
    #: Subscriptions multiplexed onto an already-registered backing query
    #: (the serving layer's common-subplan sharing): no engine-side
    #: registration happened, only a new delivery cursor.
    multiplexed_subscriptions: int = 0
    timeouts: int = 0
    retries: int = 0
    failures: int = 0


class Proxy:
    """One proxy: a shared client library pinned near one server node."""

    def __init__(self, engine: WukongSEngine, proxy_id: int,
                 affinity_node: int, policy: Optional[RetryPolicy] = None,
                 seed: int = 0):
        self.proxy_id = proxy_id
        self.affinity_node = affinity_node
        self.library = ClientLibrary(engine, client_id=f"proxy{proxy_id}",
                                     include_network=True)
        self.policy = policy if policy is not None else RetryPolicy()
        self.stats = ProxyStats()
        self.pending: List[PendingRequest] = []
        self._rng = stable_rng(seed, "proxy-retry", proxy_id)

    @property
    def engine(self) -> WukongSEngine:
        return self.library.engine

    def submit(self, text: str,
               home_node: Optional[int] = None) -> ClientResult:
        """Fire-and-hope submission (healthy-path API, unchanged).

        ``home_node`` overrides this proxy's node affinity — the serving
        layer uses it to steer one-shot traffic to the least
        injection-loaded node instead of the proxy's pinned neighbour.
        """
        self.stats.oneshot_requests += 1
        home = self.affinity_node if home_node is None else home_node
        return self.library.submit(text, home_node=home)

    def register(self, text: str) -> ClientSubscription:
        self.stats.registrations += 1
        # Continuous queries keep locality-aware placement: the engine
        # decides the home node, not the proxy.
        return self.library.register(text, home_node=None)

    def prepare(self, text: str):
        """Parse ``text`` through this proxy's shared procedure cache."""
        return self.library.prepare(text)

    def subscribe(self, procedure, handle) -> ClientSubscription:
        """Multiplex a subscription onto an existing backing registration
        (serving-layer plan sharing; no engine-side registration)."""
        self.stats.multiplexed_subscriptions += 1
        return self.library.subscribe(procedure, handle)

    # -- robust submission ---------------------------------------------------
    def _cluster_serving(self) -> bool:
        return self.engine.cluster.all_alive

    def submit_robust(self, text: str) -> PendingRequest:
        """Submit with timeout/retry semantics.

        Against a healthy cluster this is one immediate attempt.  Against
        a degraded cluster the request times out, is queued, and retried
        by :meth:`pump` on the backoff schedule until the cluster heals or
        the attempt budget runs out.
        """
        now_ms = self.engine.clock.now_ms
        request = PendingRequest(text=text, submitted_ms=now_ms)
        if self._cluster_serving():
            request.attempts = 1
            request.result = self.submit(text)
            return request
        self._note_timeout(request)
        self.pending.append(request)
        return request

    def _note_timeout(self, request: PendingRequest) -> None:
        """One attempt timed out: draw the next jittered backoff."""
        request.attempts += 1
        self.stats.timeouts += 1
        backoff = self.policy.backoff_ns(request.attempts, self._rng)
        request.backoffs_ns.append(backoff)
        request.waited_ns += self.policy.timeout_ns + backoff
        request.next_attempt_ms = request.submitted_ms + request.waited_ms

    def pump(self) -> List[PendingRequest]:
        """Retry due pending requests; returns the ones that completed.

        Call once per simulated tick (the engine does not call this; the
        proxy is client-side).  A retry against a still-degraded cluster
        times out again and backs off further; against a healed cluster it
        executes, and the accumulated waiting time is folded into the
        result's client-visible latency.
        """
        now_ms = self.engine.clock.now_ms
        finished: List[PendingRequest] = []
        for request in self.pending:
            while not request.done and request.next_attempt_ms <= now_ms:
                if self._cluster_serving():
                    self.stats.retries += 1
                    request.attempts += 1  # the attempt that succeeds
                    result = self.submit(request.text)
                    result.client_latency_ms += request.waited_ms
                    request.result = result
                elif request.attempts >= self.policy.max_attempts:
                    request.failed = True
                    self.stats.failures += 1
                else:
                    self.stats.retries += 1
                    self._note_timeout(request)
            if request.done:
                finished.append(request)
        self.pending = [r for r in self.pending if not r.done]
        return finished

    def wait_for(self, request: PendingRequest) -> ClientResult:
        """The request's result; raises if it (has) failed."""
        if request.failed:
            raise ProxyTimeoutError(
                f"request gave up after {request.attempts} attempts "
                f"({request.waited_ms:.3f} ms waited): {request.text!r}")
        if request.result is None:
            raise ProxyTimeoutError(
                f"request still pending after {request.attempts} attempts; "
                f"pump() the proxy as simulated time advances")
        return request.result


class ProxyPool:
    """Round-robin load balancing over a set of proxies."""

    def __init__(self, engine: WukongSEngine,
                 num_proxies: Optional[int] = None,
                 policy: Optional[RetryPolicy] = None, seed: int = 0):
        if num_proxies is None:
            num_proxies = engine.cluster.num_nodes
        if num_proxies < 1:
            raise ValueError(f"need at least one proxy: {num_proxies}")
        self.engine = engine
        self.proxies: List[Proxy] = [
            Proxy(engine, proxy_id=i,
                  affinity_node=i % engine.cluster.num_nodes,
                  policy=policy, seed=seed)
            for i in range(num_proxies)
        ]
        self._next = 0

    def pick(self) -> Proxy:
        """The next proxy in round-robin order (load balancing)."""
        proxy = self.proxies[self._next % len(self.proxies)]
        self._next += 1
        return proxy

    # Kept for callers that predate the public name.
    _pick = pick

    def submit(self, text: str) -> ClientResult:
        """Route a one-shot query through the next proxy."""
        return self._pick().submit(text)

    def submit_robust(self, text: str) -> PendingRequest:
        """Route a one-shot query with timeout/retry semantics."""
        return self._pick().submit_robust(text)

    def register(self, text: str) -> ClientSubscription:
        """Register a continuous query through the next proxy."""
        return self._pick().register(text)

    def pump(self) -> List[PendingRequest]:
        """Drive every proxy's retry queue; returns completed requests."""
        finished: List[PendingRequest] = []
        for proxy in self.proxies:
            finished.extend(proxy.pump())
        return finished

    # -- observability ----------------------------------------------------
    def request_counts(self) -> Dict[int, int]:
        return {proxy.proxy_id: proxy.stats.oneshot_requests
                for proxy in self.proxies}

    @property
    def total_requests(self) -> int:
        return sum(p.stats.oneshot_requests for p in self.proxies)

    @property
    def total_pending(self) -> int:
        return sum(len(p.pending) for p in self.proxies)
