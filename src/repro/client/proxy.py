"""Dedicated proxies: running the client library near the cluster.

"Alternatively, Wukong+S can use a set of dedicated proxies to run the
client-side library and balance client requests" (§3).  A
:class:`ProxyPool` spreads one-shot submissions across proxies (and the
proxies spread them across server nodes), so a massive client population
never funnels through one node.  Each proxy shares one procedure cache
across all the clients it fronts — the multiplexing benefit of proxies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.client.library import ClientLibrary, ClientResult, \
    ClientSubscription
from repro.core.engine import WukongSEngine


@dataclass
class ProxyStats:
    """Request counters for one proxy."""

    oneshot_requests: int = 0
    registrations: int = 0


class Proxy:
    """One proxy: a shared client library pinned near one server node."""

    def __init__(self, engine: WukongSEngine, proxy_id: int,
                 affinity_node: int):
        self.proxy_id = proxy_id
        self.affinity_node = affinity_node
        self.library = ClientLibrary(engine, client_id=f"proxy{proxy_id}",
                                     include_network=True)
        self.stats = ProxyStats()

    def submit(self, text: str) -> ClientResult:
        self.stats.oneshot_requests += 1
        return self.library.submit(text, home_node=self.affinity_node)

    def register(self, text: str) -> ClientSubscription:
        self.stats.registrations += 1
        # Continuous queries keep locality-aware placement: the engine
        # decides the home node, not the proxy.
        return self.library.register(text, home_node=None)


class ProxyPool:
    """Round-robin load balancing over a set of proxies."""

    def __init__(self, engine: WukongSEngine, num_proxies: Optional[int] = None):
        if num_proxies is None:
            num_proxies = engine.cluster.num_nodes
        if num_proxies < 1:
            raise ValueError(f"need at least one proxy: {num_proxies}")
        self.engine = engine
        self.proxies: List[Proxy] = [
            Proxy(engine, proxy_id=i,
                  affinity_node=i % engine.cluster.num_nodes)
            for i in range(num_proxies)
        ]
        self._next = 0

    def _pick(self) -> Proxy:
        proxy = self.proxies[self._next % len(self.proxies)]
        self._next += 1
        return proxy

    def submit(self, text: str) -> ClientResult:
        """Route a one-shot query through the next proxy."""
        return self._pick().submit(text)

    def register(self, text: str) -> ClientSubscription:
        """Register a continuous query through the next proxy."""
        return self._pick().register(text)

    # -- observability ----------------------------------------------------
    def request_counts(self) -> Dict[int, int]:
        return {proxy.proxy_id: proxy.stats.oneshot_requests
                for proxy in self.proxies}

    @property
    def total_requests(self) -> int:
        return sum(p.stats.oneshot_requests for p in self.proxies)
