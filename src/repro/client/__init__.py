"""Client-side machinery (§3, Fig. 5a).

Each client runs a *client library* that parses C-SPARQL/SPARQL text into
stored procedures (cached, so repeated submissions skip the parser) and
talks to the engine; a *proxy pool* optionally runs the library on
dedicated nodes and balances massive client populations across the
cluster, as the paper's throughput experiments emulate (§6.6).
"""

from repro.client.procedures import ProcedureCache, StoredProcedure
from repro.client.library import ClientLibrary, ClientResult, \
    ClientSubscription
from repro.client.proxy import Proxy, ProxyPool

__all__ = [
    "ProcedureCache",
    "StoredProcedure",
    "ClientLibrary",
    "ClientResult",
    "ClientSubscription",
    "Proxy",
    "ProxyPool",
]
