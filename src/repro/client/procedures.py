"""Stored procedures: client-side parsed queries.

The client library "can parse continuous and one-shot queries into a set
of stored procedures, which will be immediately executed for one-shot
queries or registered for continuous queries on the server side" (§3).
Parsing happens once per distinct query text; repeated submissions reuse
the cached procedure, which is how web front-ends serve many users with a
small query catalogue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.sparql.ast import Query, is_variable
from repro.sparql.parser import parse_query
from repro.sparql.planner import ExecutionPlan, plan_query


@dataclass(frozen=True)
class StoredProcedure:
    """One parsed + planned query, ready for submission."""

    text: str
    query: Query
    plan: ExecutionPlan

    @property
    def is_continuous(self) -> bool:
        return self.query.is_continuous

    def constants(self) -> List[str]:
        """The constant terms whose IDs the client must resolve up front
        (the string-server round trip that keeps long strings off the
        servers)."""
        seen: List[str] = []
        for pattern in self.query.patterns:
            for term in (pattern.subject, pattern.object):
                if not is_variable(term) and term not in seen:
                    seen.append(term)
        return seen


class ProcedureCache:
    """Per-client cache of parsed procedures."""

    def __init__(self) -> None:
        self._cache: Dict[str, StoredProcedure] = {}
        self.hits = 0
        self.misses = 0

    def get(self, text: str) -> StoredProcedure:
        """Parse (or fetch the cached) procedure for ``text``."""
        procedure = self._cache.get(text)
        if procedure is not None:
            self.hits += 1
            return procedure
        self.misses += 1
        query = parse_query(text)
        procedure = StoredProcedure(text=text, query=query,
                                    plan=plan_query(query))
        self._cache[text] = procedure
        return procedure

    def __len__(self) -> int:
        return len(self._cache)
