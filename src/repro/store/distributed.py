"""The distributed Wukong store: one shard per simulated node.

Placement follows Wukong's hash partitioning: the key ``[vid|eid|d]`` lives
on ``owner_of(vid)``.  Each triple ``(s, p, o)`` therefore produces an
out-edge entry on the owner of ``s``, an in-edge entry on the owner of
``o``, and index-vertex registrations on those same nodes (index vertices
are split across machines, each node indexing its local vertices).

Remote access pricing mirrors the paper: a normal remote key/value access
costs **two** one-sided RDMA reads (one to locate the key, one to fetch the
value); the stream index removes the first of these (§5, "Leveraging
RDMA").  Without RDMA, the same accesses become TCP round trips.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Protocol, Tuple

from repro.rdf.ids import (
    _EID_SHIFT,
    _VID_SHIFT,
    DIR_IN,
    DIR_OUT,
    make_key,
)
from repro.rdf.string_server import StringServer
from repro.rdf.terms import EncodedTriple, Triple
from repro.sim.cluster import Cluster
from repro.sim.cost import ChargeSet, LatencyMeter
from repro.store.kvstore import ADJACENCY_CACHE_CAPACITY, BASE_SN, \
    ShardStore, ValueSpan

#: Approximate wire size of one key descriptor (for remote key lookups).
_KEY_BYTES = 32


class StoreAccess(Protocol):
    """What the graph explorer needs from a data source.

    Implementations exist for the persistent store (here), for stream
    windows via the stream index (``repro.core.stream_index``), and for the
    transient store (``repro.core.transient``).
    """

    def resolve_entity(self, name: str) -> Optional[int]:
        """vid for a constant term, or None if the term is unknown."""
        ...

    def resolve_predicate(self, name: str) -> Optional[int]:
        """eid for a predicate, or None if unknown."""
        ...

    def neighbors(self, vid: int, eid: int, d: int,
                  meter: LatencyMeter) -> List[int]:
        """Neighbour vids of ``vid`` through ``eid`` edges in direction ``d``."""
        ...

    def index_vertices(self, eid: int, d: int,
                       meter: LatencyMeter) -> List[int]:
        """Vertices having a ``d``-direction ``eid`` edge (index-vertex read)."""
        ...


class DistributedStore:
    """All shards of the persistent store plus placement logic."""

    def __init__(self, cluster: Cluster, strings: StringServer,
                 adjacency_capacity: int = ADJACENCY_CACHE_CAPACITY,
                 adjacency_policy: str = "fifo",
                 adjacency_weighted: bool = False):
        self.cluster = cluster
        self.strings = strings
        self.adjacency_capacity = adjacency_capacity
        self.adjacency_policy = adjacency_policy
        self.adjacency_weighted = adjacency_weighted
        self.shards: List[ShardStore] = [
            ShardStore(cluster.cost, adjacency_capacity=adjacency_capacity,
                       adjacency_policy=adjacency_policy,
                       adjacency_weighted=adjacency_weighted)
            for _ in range(cluster.num_nodes)
        ]

    # -- loading / injection --------------------------------------------
    def insert_out_edge(self, enc: EncodedTriple, sn: int = BASE_SN,
                        meter: Optional[LatencyMeter] = None) -> ValueSpan:
        """Insert the out-edge half of a triple on the subject's owner node.

        Returns the inserted span so the injector can index it.
        """
        s_node = self.cluster.owner_of(enc.s)
        span = self.shards[s_node].insert(
            make_key(enc.s, enc.p, DIR_OUT), enc.o, sn=sn, meter=meter)
        self.shards[s_node].add_index(enc.p, DIR_OUT, enc.s, meter=meter)
        return span

    def insert_in_edge(self, enc: EncodedTriple, sn: int = BASE_SN,
                       meter: Optional[LatencyMeter] = None) -> ValueSpan:
        """Insert the in-edge half of a triple on the object's owner node."""
        o_node = self.cluster.owner_of(enc.o)
        span = self.shards[o_node].insert(
            make_key(enc.o, enc.p, DIR_IN), enc.s, sn=sn, meter=meter)
        self.shards[o_node].add_index(enc.p, DIR_IN, enc.o, meter=meter)
        return span

    def insert_encoded(self, enc: EncodedTriple, sn: int = BASE_SN,
                       meter: Optional[LatencyMeter] = None
                       ) -> Dict[str, ValueSpan]:
        """Insert one full encoded triple under snapshot ``sn``.

        Returns the out-edge and in-edge spans so the injector can build
        stream-index entries for them.
        """
        return {
            "out": self.insert_out_edge(enc, sn=sn, meter=meter),
            "in": self.insert_in_edge(enc, sn=sn, meter=meter),
        }

    def load(self, triples: Iterable[Triple]) -> int:
        """Bulk-load initial (string) triples at the base snapshot."""
        count = 0
        for triple in triples:
            self.insert_encoded(self.strings.encode_triple(triple))
            count += 1
        return count

    def compact(self, bound_sn: int) -> int:
        """Run bounded scalarization on every shard; returns keys touched."""
        return sum(shard.compact(bound_sn) for shard in self.shards)

    # -- placement-aware reads --------------------------------------------
    def neighbors_from(self, home_node: int, vid: int, eid: int, d: int,
                       meter: LatencyMeter, max_sn: Optional[int] = None,
                       category: str = "store") -> List[int]:
        """Neighbour lookup as seen from ``home_node``.

        Local keys pay probe+scan; remote keys additionally pay two remote
        reads (key, then value), per the paper's RDMA cost analysis.

        Hot ``(vertex, predicate)`` probes are served from the owner
        shard's adjacency-segment cache — a wall-clock optimization only:
        a hit charges exactly the remote reads, hash probe and per-entry
        scan of an uncached lookup, in the same order, so simulated time
        is bit-identical.  Inserts invalidate the written key's segment;
        cached segments survive compaction and serve any snapshot bound
        with the same visible prefix (see ``ShardStore``).

        ``Cluster.owner_of`` (modulo partitioning) and ``make_key`` are
        inlined here: this is the innermost store probe of every
        execution, and ``vid``/``eid`` come from the store or the string
        server, already range-checked on insert.
        """
        owner = vid % len(self.cluster.nodes)
        key = (vid << _VID_SHIFT) | (eid << _EID_SHIFT) | d
        shard = self.shards[owner]
        cached = shard.cached_adjacency(key, max_sn)
        if cached is not None:
            visible, total = cached
            if owner != home_node:
                self.cluster.fabric.remote_read(meter, _KEY_BYTES,
                                                category="network")
                self.cluster.fabric.remote_read(meter, 16 + 8 * total,
                                                category="network")
            meter.charge(shard.cost.hash_probe_ns, category=category)
            meter.charge(shard.cost.scan_entry_ns, times=len(visible),
                         category=category)
            return visible
        if owner != home_node:
            self.cluster.fabric.remote_read(meter, _KEY_BYTES,
                                            category="network")
            self.cluster.fabric.remote_read(meter, shard.value_bytes(key),
                                            category="network")
        visible = shard.lookup(key, max_sn=max_sn, meter=meter,
                               category=category)
        shard.cache_adjacency(key, max_sn, visible)
        return visible

    def neighbors_many(self, home_node: int, vids: Iterable[int], eid: int,
                       d: int, meter: LatencyMeter,
                       max_sn: Optional[int] = None,
                       category: str = "store") -> Dict[int, List[int]]:
        """Batch-shaped neighbour lookup: one fetch per *distinct* vid.

        Fetches run in first-occurrence order over ``vids`` — exactly the
        order (and the charges) of the executor's per-expansion neighbour
        cache issuing :meth:`neighbors_from` calls one by one, so even
        order-sensitive fractional charges accumulate identically.  The
        columnar batch kernels hand whole start columns here instead of
        calling through the per-vid access indirection row by row.
        """
        fetched: Dict[int, List[int]] = {}
        fetch = self.neighbors_from
        for vid in vids:
            if vid not in fetched:
                fetched[vid] = fetch(home_node, vid, eid, d, meter,
                                     max_sn=max_sn, category=category)
        return fetched

    def neighbors_versions_from(self, home_node: int, vid: int, eid: int,
                                d: int, meter: LatencyMeter,
                                max_sn: Optional[int] = None,
                                category: str = "store"
                                ) -> Tuple[List[int], List[int]]:
        """Version-carrying neighbour lookup as seen from ``home_node``.

        The SPARQL-T quintuple read: returns ``(vids, sns)`` — each
        visible neighbour paired with its insertion snapshot — with the
        same placement pricing as :meth:`neighbors_from` (local keys pay
        probe+scan, remote keys two remote reads).  The SN column lives
        in the same value list, so no extra read is charged.  Bypasses
        the adjacency-segment cache: that cache stores value prefixes
        only, and the temporal evaluator is not on the hot one-shot path.
        """
        owner = vid % len(self.cluster.nodes)
        key = (vid << _VID_SHIFT) | (eid << _EID_SHIFT) | d
        shard = self.shards[owner]
        if owner != home_node:
            self.cluster.fabric.remote_read(meter, _KEY_BYTES,
                                            category="network")
            self.cluster.fabric.remote_read(meter, shard.value_bytes(key),
                                            category="network")
        return shard.lookup_versions(key, max_sn=max_sn, meter=meter,
                                     category=category)

    def neighbors_versions_batch(self, home_node: int, vids: Iterable[int],
                                 eid: int, d: int, meter: LatencyMeter,
                                 max_sn: Optional[int] = None,
                                 category: str = "store"
                                 ) -> Dict[int, Tuple[List[int], List[int]]]:
        """Batch version-carrying lookup: one probe per *distinct* vid.

        The columnar temporal kernels hand whole start columns here.
        Probes run in first-occurrence order over ``vids`` — exactly the
        order of the row evaluator's per-step probe cache issuing
        :meth:`neighbors_versions_from` calls one by one — so the
        order-sensitive fractional remote-read charges accumulate
        identically.  The integer hash-probe and scan charges accumulate
        through a per-shard :class:`ChargeSet`, flushed *before every
        fractional remote read* (and once at the end): integer partial
        sums are exact in any grouping, but only between two fractional
        charges — each fractional charge must land on the same running
        total as in the per-probe loop, or its rounding can differ in
        the last bit (the ``charges_commute`` discipline; same
        flush-before-float rule as ``WindowAccess.neighbors_many``).
        """
        fetched: Dict[int, Tuple[List[int], List[int]]] = {}
        charges = ChargeSet()
        nodes = len(self.cluster.nodes)
        remote_read = self.cluster.fabric.remote_read
        for vid in vids:
            if vid in fetched:
                continue
            owner = vid % nodes
            key = (vid << _VID_SHIFT) | (eid << _EID_SHIFT) | d
            shard = self.shards[owner]
            if owner != home_node:
                charges.flush(meter)
                remote_read(meter, _KEY_BYTES, category="network")
                remote_read(meter, shard.value_bytes(key),
                            category="network")
            fetched[vid] = shard.lookup_versions(key, max_sn=max_sn,
                                                 meter=charges,
                                                 category=category)
        charges.flush(meter)
        return fetched

    def span_from(self, home_node: int, span: ValueSpan, owner: int,
                  meter: LatencyMeter, category: str = "store") -> List[int]:
        """Direct span read (stream-index fast path): at most one remote read."""
        shard = self.shards[owner]
        if owner != home_node:
            self.cluster.fabric.remote_read(meter, 16 + 8 * span.length,
                                            category="network")
        return shard.lookup_span(span, meter=meter, category=category)

    def local_index(self, node_id: int, eid: int, d: int,
                    meter: LatencyMeter, category: str = "store") -> List[int]:
        """One node's local portion of an index vertex."""
        return self.shards[node_id].index_vertices(eid, d, meter=meter,
                                                   category=category)

    def gather_index(self, home_node: int, eid: int, d: int,
                     meter: LatencyMeter, category: str = "store") -> List[int]:
        """The full index vertex, gathering remote portions over the fabric."""
        vertices: List[int] = []
        for node_id, shard in enumerate(self.shards):
            part = shard.index_vertices(eid, d, meter=meter, category=category)
            if node_id != home_node and part:
                self.cluster.fabric.remote_read(
                    meter, 16 + 8 * len(part), category="network")
            vertices.extend(part)
        return vertices

    # -- stats ---------------------------------------------------------------
    def predicate_cardinality(self, eid: int, d: int) -> Tuple[int, int]:
        """Cluster-wide ``(entries, distinct keys)`` for ``(eid, d)``.

        Vertices are owned by exactly one shard, so per-shard distinct
        counts sum to the cluster-wide distinct count.  Maintained at
        load/injection time; reading it charges nothing (planner input,
        not a modelled store access).
        """
        entries = 0
        keys = 0
        for shard in self.shards:
            entries += shard.predicate_entries(eid, d)
            keys += shard.predicate_keys(eid, d)
        return entries, keys

    def topk_degree(self, eid: int, d: int, vid: int) -> Optional[int]:
        """``vid``'s tracked ``(eid, d)`` degree from its owner shard's
        top-k sketch, or None when it is not a tracked heavy hitter.

        A vertex's ``(eid, d)`` adjacency key lives on exactly one shard,
        so only the owner's sketch can track it.  Charge-free planner
        input, like :meth:`predicate_cardinality`.
        """
        return self.shards[self.cluster.owner_of(vid)].topk_degree(
            eid, d, vid)

    @property
    def num_entries(self) -> int:
        return sum(shard.num_entries for shard in self.shards)

    def memory_bytes(self) -> int:
        return sum(shard.memory_bytes() for shard in self.shards)


class PersistentAccess:
    """`StoreAccess` over the persistent store, as seen from one node.

    ``max_sn`` bounds visibility for snapshot-isolated one-shot queries;
    None reads everything (used while loading and by trusted internals).
    ``local_index_only`` restricts index-vertex enumeration to the home
    node's shard — the fork-join execution mode gives each branch such an
    access so branches partition the start vertices.
    """

    def __init__(self, store: DistributedStore, home_node: int = 0,
                 max_sn: Optional[int] = None,
                 local_index_only: bool = False):
        self.store = store
        self.home_node = home_node
        self.max_sn = max_sn
        self.local_index_only = local_index_only

    def resolve_entity(self, name: str) -> Optional[int]:
        return self.store.strings.lookup_entity(name)

    def resolve_predicate(self, name: str) -> Optional[int]:
        return self.store.strings.lookup_predicate(name)

    def neighbors(self, vid: int, eid: int, d: int,
                  meter: LatencyMeter) -> List[int]:
        return self.store.neighbors_from(self.home_node, vid, eid, d, meter,
                                         max_sn=self.max_sn)

    def neighbors_many(self, vids: Iterable[int], eid: int, d: int,
                       meter: LatencyMeter) -> Dict[int, List[int]]:
        """Deduplicated bulk neighbour fetch (batch-kernel fast path)."""
        return self.store.neighbors_many(self.home_node, vids, eid, d,
                                         meter, max_sn=self.max_sn)

    def index_vertices(self, eid: int, d: int,
                       meter: LatencyMeter) -> List[int]:
        if self.local_index_only:
            return self.store.local_index(self.home_node, eid, d, meter)
        return self.store.gather_index(self.home_node, eid, d, meter)

    def index_vertices_local(self, eid: int, d: int, node_id: int,
                             meter: LatencyMeter) -> List[int]:
        """One node's index portion (fork-join/migrate branch start set)."""
        return self.store.local_index(node_id, eid, d, meter)
