"""The Wukong base store: sharded key/value graph storage and the
graph-exploration query executor."""

from repro.store.kvstore import ShardStore, ValueSpan
from repro.store.distributed import DistributedStore, StoreAccess
from repro.store.executor import GraphExplorer, ExecutionResult

__all__ = [
    "ShardStore",
    "ValueSpan",
    "DistributedStore",
    "StoreAccess",
    "GraphExplorer",
    "ExecutionResult",
]
