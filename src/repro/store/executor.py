"""The graph-exploration query executor.

Evaluates an :class:`~repro.sparql.planner.ExecutionPlan` by extending
variable-binding rows one pattern at a time, exactly as Wukong's
exploration engine: each step turns the current binding set into neighbour
lookups, so intermediate results stay pruned instead of exploding through
relational joins (the "join bomb" the paper contrasts against).

Three execution modes mirror the paper (§5, "Leveraging RDMA"):

*in-place* — one worker on one node runs the whole query, fetching remote
data with one-sided RDMA reads.  Chosen for selective queries (constant
start), which touch a modest amount of data.

*fork-join* — the query forks to every node; each branch explores from its
local portion of the start set (partitioned by vertex owner) and partial
results are gathered at the home node.  Chosen for non-selective
(index-start) queries; latency is the slowest branch plus fork/gather.

*migrate* — the non-RDMA fallback: execution hops between nodes following
the data, shipping binding rows in bulk messages between steps instead of
issuing per-read round trips.  Every neighbour lookup is local by
construction (rows are routed to the owner of their step's start vertex).

Sources are pluggable: the caller supplies an ``access_factory`` mapping a
node id to a pattern->:class:`~repro.store.distributed.StoreAccess`
resolver, so the same executor drives one-shot queries (persistent store
only) and continuous queries (stream windows + persistent store) — the
global-plan advantage of the integrated design.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import PlanError
from repro.rdf.ids import DIR_IN, DIR_OUT
from repro.sim.cluster import Cluster
from repro.sim.cost import LatencyMeter
from repro.sparql.ast import TriplePattern, is_variable
from repro.sparql.planner import (
    BOUND_OBJECT,
    BOUND_SUBJECT,
    CONST_OBJECT,
    CONST_SUBJECT,
    ExecutionPlan,
    INDEX_START,
    PlannedStep,
)
from repro.store.distributed import StoreAccess

#: One variable-binding row.
Row = Dict[str, int]

#: Maps a pattern to the data source it should read.
AccessResolver = Callable[[TriplePattern], StoreAccess]

#: Maps a node id to that node's pattern resolver.
AccessFactory = Callable[[int], AccessResolver]

#: Estimated wire size of one binding row during migration/gather
#: (a few 8-byte bindings plus framing).
_ROW_BYTES = 48


@dataclass
class ExecutionResult:
    """Rows produced by one query execution."""

    variables: List[str]
    rows: List[Tuple[int, ...]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def as_dicts(self) -> List[Dict[str, int]]:
        return [dict(zip(self.variables, row)) for row in self.rows]

    def as_bool(self) -> bool:
        """The boolean answer of an ASK query (any solution exists)."""
        return bool(self.rows)


class GraphExplorer:
    """Executes plans against pluggable store accesses.

    ``strings`` (the string server) is needed to evaluate FILTER
    expressions and aggregates, whose semantics depend on entity names;
    plain pattern queries run without it.
    """

    def __init__(self, cluster: Cluster, strings=None):
        self.cluster = cluster
        self.cost = cluster.cost
        self.strings = strings

    # -- public entry points ------------------------------------------------
    def execute(self, plan: ExecutionPlan, access_factory: AccessFactory,
                meter: LatencyMeter, home_node: int = 0,
                mode: str = "auto") -> ExecutionResult:
        """Run ``plan`` and return projected, deduplicated rows.

        ``mode`` is ``"auto"`` (migrate when the fabric lacks RDMA;
        fork-join for index starts on multi-node clusters; in-place
        otherwise), ``"in_place"``, ``"fork_join"`` or ``"migrate"``.
        """
        if not plan.steps and not plan.query.unions:
            raise PlanError("cannot execute an empty plan")
        filters_at, leftover_filters = self._filter_schedule(plan)
        if mode == "auto":
            if not self.cluster.fabric.use_rdma \
                    and self.cluster.num_nodes > 1:
                mode = "migrate"
            elif plan.steps and plan.steps[0].kind == INDEX_START \
                    and self.cluster.num_nodes > 1:
                mode = "fork_join"
            else:
                mode = "in_place"
        if not plan.steps:
            rows = [{}]  # a pure-UNION WHERE block
        elif mode == "in_place":
            rows = self._run_steps(plan.steps, access_factory(home_node),
                                   meter, filters_at=filters_at)
        elif mode == "fork_join":
            rows = self._run_fork_join(plan, access_factory, meter,
                                       home_node, filters_at)
        elif mode == "migrate":
            rows = self._run_migrate(plan, access_factory, meter, home_node,
                                     filters_at)
        else:
            raise PlanError(f"unknown execution mode: {mode}")
        if plan.query.unions and rows:
            rows = self._apply_unions(plan.query, rows,
                                      access_factory(home_node), meter)
        if plan.query.optionals and rows:
            rows = self._apply_optionals(plan.query, rows,
                                         access_factory(home_node), meter)
        if leftover_filters and rows:
            # Filters over OPTIONAL-bound variables run once those resolve
            # (an unmatched OPTIONAL leaves them unbound -> row eliminated).
            from repro.sparql.evaluate import apply_filters
            first_access = access_factory(home_node)(plan.steps[0].pattern)
            rows = apply_filters(rows, leftover_filters,
                                 self.strings.entity_name,
                                 first_access.resolve_entity, meter,
                                 self.cost, strict=False)
        return self._project(plan, rows, meter)

    def _filter_schedule(self, plan: ExecutionPlan):
        """Assign each FILTER to the earliest step binding its variables."""
        if not plan.query.filters:
            return None, []
        if self.strings is None:
            raise PlanError(
                "FILTER evaluation needs a string server; construct the "
                "explorer with GraphExplorer(cluster, strings)")
        from repro.sparql.evaluate import filters_by_step
        bound: set = set()
        step_vars = []
        for step in plan.steps:
            bound |= set(step.pattern.variables())
            step_vars.append(set(bound))
        return filters_by_step(plan.query, step_vars)

    def _apply_unions(self, query, rows: List[Row],
                      access_for: AccessResolver,
                      meter: LatencyMeter) -> List[Row]:
        """Alternate each UNION: concatenate the branches' extensions.

        Branches bind identical variable sets (the parser enforces it),
        so downstream joins and projections see uniform rows.
        """
        from repro.sparql.planner import plan_steps
        bound = set(query.mandatory_variables())
        for union in query.unions:
            combined: List[Row] = []
            for branch in union:
                steps = plan_steps(branch, prebound=bound)
                for row in rows:
                    combined.extend(self.explore(steps, access_for, meter,
                                                 seeds=[row]))
            rows = combined
            if not rows:
                break
            bound |= {var for pattern in union[0]
                      for var in pattern.variables()}
        return rows

    def _apply_optionals(self, query, rows: List[Row],
                         access_for: AccessResolver,
                         meter: LatencyMeter) -> List[Row]:
        """Left-outer-join each OPTIONAL group onto the solution rows.

        Rows the group cannot extend survive with its variables unbound —
        SPARQL's OPTIONAL semantics.  Optional resolution runs at the home
        node (seeds are the already-pruned solution set).
        """
        from repro.sparql.planner import plan_steps
        bound = set(query.mandatory_variables())
        for union in query.unions:
            bound |= {var for pattern in union[0]
                      for var in pattern.variables()}
        for group in query.optionals:
            steps = plan_steps(group, prebound=bound)
            extended: List[Row] = []
            for row in rows:
                matches = self.explore(steps, access_for, meter,
                                       seeds=[row])
                if matches:
                    extended.extend(matches)
                else:
                    extended.append(row)
            rows = extended
            bound |= {var for pattern in group
                      for var in pattern.variables()}
        return rows

    def _apply_step_filters(self, rows: List[Row], filters,
                            access: StoreAccess,
                            meter: LatencyMeter) -> List[Row]:
        if not filters or not rows:
            return rows
        from repro.sparql.evaluate import apply_filters
        return apply_filters(rows, filters, self.strings.entity_name,
                             access.resolve_entity, meter, self.cost)

    def explore(self, steps: Sequence[PlannedStep],
                access_for: AccessResolver, meter: LatencyMeter,
                seeds: Optional[List[Row]] = None) -> List[Row]:
        """Run bare plan steps from ``seeds`` (default: one empty row).

        Returns raw binding rows without projection.  Used for embedded
        sub-queries whose seed bindings come from another system (the
        composite design) and by tests.
        """
        rows: List[Row] = [dict(seed) for seed in seeds] \
            if seeds is not None else [{}]
        for step in steps:
            if not rows:
                break
            rows = self._expand(step, rows, access_for(step.pattern), meter)
        return rows

    # -- fork-join ----------------------------------------------------------
    def _run_fork_join(self, plan: ExecutionPlan,
                       access_factory: AccessFactory, meter: LatencyMeter,
                       home_node: int,
                       filters_at: Optional[List[List]] = None) -> List[Row]:
        """Distributed execution with explicit fork/gather bookkeeping.

        The dataflow is the migrating execution (rows follow the data);
        fork-join adds the per-node dispatch cost and, with RDMA enabled,
        moves every bulk transfer over one-sided verbs instead of TCP.
        """
        rows = self._run_migrate(plan, access_factory, meter, home_node,
                                 filters_at)
        meter.charge(self.cost.join_gather_ns, category="gather")
        return rows

    # -- migrating execution ---------------------------------------------------
    def _run_migrate(self, plan: ExecutionPlan,
                     access_factory: AccessFactory, meter: LatencyMeter,
                     home_node: int,
                     filters_at: Optional[List[List]] = None) -> List[Row]:
        """Distributed execution: rows follow the data in bulk transfers."""
        resolvers: Dict[int, AccessResolver] = {
            node.node_id: access_factory(node.node_id)
            for node in self.cluster.alive_nodes()
        }
        located: Dict[int, List[Row]] = {home_node: [{}]}
        for index, step in enumerate(plan.steps):
            routed = self._route(step, located, resolvers, meter)
            if not routed:
                located = {}
                break
            branches = []
            next_located: Dict[int, List[Row]] = {}
            for node_id, rows in routed.items():
                branch = meter.spawn()
                access = resolvers[node_id](step.pattern)
                out = self._expand(step, rows, access,
                                   branch, index_owner=node_id
                                   if step.kind == INDEX_START else None)
                if filters_at is not None:
                    out = self._apply_step_filters(out, filters_at[index],
                                                   access, branch)
                if out:
                    next_located[node_id] = out
                branches.append(branch)
            meter.join_parallel(branches)
            located = next_located
            if not located:
                break
        # Gather partial results back at the home node (parallel sends).
        gather = []
        all_rows: List[Row] = []
        for node_id, rows in located.items():
            branch = meter.spawn()
            if node_id != home_node and rows:
                self.cluster.fabric.bulk_transfer(
                    branch, _ROW_BYTES * len(rows), category="network")
            gather.append(branch)
            all_rows.extend(rows)
        meter.join_parallel(gather)
        return all_rows

    def _route(self, step: PlannedStep, located: Dict[int, List[Row]],
               resolvers: Dict[int, AccessResolver],
               meter: LatencyMeter) -> Dict[int, List[Row]]:
        """Move rows to the owner of the step's start vertex.

        Migration messages from different nodes are concurrent; the meter
        is charged with the largest transfer of the round.
        """
        pattern = step.pattern
        all_rows = [row for rows in located.values() for row in rows]
        routed: Dict[int, List[Row]] = defaultdict(list)
        if step.kind == INDEX_START:
            # Broadcast: every node explores its local start vertices.
            # Dispatching the sub-query to each node is the fork cost.
            meter.charge(self.cost.fork_ns, times=len(resolvers),
                         category="fork")
            for node_id in resolvers:
                routed[node_id] = [dict(row) for row in all_rows]
        elif step.kind in (CONST_SUBJECT, CONST_OBJECT):
            term = pattern.subject if step.kind == CONST_SUBJECT \
                else pattern.object
            any_resolver = next(iter(resolvers.values()))
            vid = any_resolver(pattern).resolve_entity(term)
            if vid is None:
                return {}
            routed[self.cluster.owner_of(vid)] = all_rows
        else:
            var = pattern.subject if step.kind == BOUND_SUBJECT \
                else pattern.object
            for row in all_rows:
                routed[self.cluster.owner_of(row[var])].append(row)
        # Charge the migration round: the largest single transfer that
        # actually crosses nodes (sends proceed in parallel).
        largest = 0
        for dst, rows in routed.items():
            stayed = len(located.get(dst, ()))
            moving = max(0, len(rows) - stayed)
            largest = max(largest, moving)
        if largest and len(located) == 1 and set(located) == set(routed):
            largest = 0  # everything already sits on the right node
        if largest:
            self.cluster.fabric.bulk_transfer(meter, _ROW_BYTES * largest,
                                              category="network")
        return dict(routed)

    # -- core exploration -----------------------------------------------------
    def _run_steps(self, steps: Sequence[PlannedStep],
                   access_for: AccessResolver, meter: LatencyMeter,
                   index_owner: Optional[int] = None,
                   filters_at: Optional[List[List]] = None) -> List[Row]:
        """Run all steps on one node.  ``index_owner`` restricts INDEX_START
        enumeration to vertices owned by that node (fork-join branches)."""
        rows: List[Row] = [{}]
        for index, step in enumerate(steps):
            owner = index_owner if step.kind == INDEX_START else None
            access = access_for(step.pattern)
            rows = self._expand(step, rows, access, meter,
                                index_owner=owner)
            if filters_at is not None:
                rows = self._apply_step_filters(rows, filters_at[index],
                                                access, meter)
            if not rows:
                break
        return rows

    def _expand(self, step: PlannedStep, rows: List[Row],
                access: StoreAccess, meter: LatencyMeter,
                index_owner: Optional[int] = None) -> List[Row]:
        pattern = step.pattern
        eid = access.resolve_predicate(pattern.predicate)
        if eid is None:
            return []

        if step.kind == CONST_SUBJECT:
            svid = access.resolve_entity(pattern.subject)
            if svid is None:
                return []
            neighbors = access.neighbors(svid, eid, DIR_OUT, meter)
            return self._bind_side(rows, pattern.object, neighbors, access,
                                   meter)
        if step.kind == CONST_OBJECT:
            ovid = access.resolve_entity(pattern.object)
            if ovid is None:
                return []
            neighbors = access.neighbors(ovid, eid, DIR_IN, meter)
            return self._bind_side(rows, pattern.subject, neighbors, access,
                                   meter)
        if step.kind == BOUND_SUBJECT:
            return self._expand_bound(rows, pattern.subject, pattern.object,
                                      eid, DIR_OUT, access, meter)
        if step.kind == BOUND_OBJECT:
            return self._expand_bound(rows, pattern.object, pattern.subject,
                                      eid, DIR_IN, access, meter)
        if step.kind == INDEX_START:
            return self._expand_index(rows, pattern, eid, access, meter,
                                      index_owner)
        raise PlanError(f"unknown step kind: {step.kind}")

    def _bind_side(self, rows: List[Row], term: str, neighbors: List[int],
                   access: StoreAccess, meter: LatencyMeter) -> List[Row]:
        """Match or bind one side of a pattern against a neighbour list,
        shared by every input row (the other side was a constant)."""
        out: List[Row] = []
        if not is_variable(term):
            required = access.resolve_entity(term)
            if required is None or required not in neighbors:
                return []
            meter.charge(self.cost.binding_ns, times=len(rows),
                         category="explore")
            return list(rows)
        for row in rows:
            bound = row.get(term)
            if bound is not None:
                if bound in neighbors:
                    out.append(row)
                    meter.charge(self.cost.binding_ns, category="explore")
                continue
            for vid in neighbors:
                extended = dict(row)
                extended[term] = vid
                out.append(extended)
                meter.charge(self.cost.binding_ns, category="explore")
        return out

    def _expand_bound(self, rows: List[Row], bound_term: str, other_term: str,
                      eid: int, direction: int, access: StoreAccess,
                      meter: LatencyMeter) -> List[Row]:
        """Expand rows through neighbour lookups of an already-bound variable."""
        out: List[Row] = []
        fetched: Dict[int, List[int]] = {}
        other_const: Optional[int] = None
        if not is_variable(other_term):
            other_const = access.resolve_entity(other_term)
            if other_const is None:
                return []
        for row in rows:
            start = row.get(bound_term)
            if start is None:
                # The variable is unbound in this row (unmatched OPTIONAL):
                # the pattern cannot join it.
                continue
            neighbors = fetched.get(start)
            if neighbors is None:
                neighbors = access.neighbors(start, eid, direction, meter)
                fetched[start] = neighbors
            if other_const is not None:
                if other_const in neighbors:
                    out.append(row)
                    meter.charge(self.cost.binding_ns, category="explore")
                continue
            bound_other = row.get(other_term)
            if bound_other is not None:
                if bound_other in neighbors:
                    out.append(row)
                    meter.charge(self.cost.binding_ns, category="explore")
                continue
            for vid in neighbors:
                extended = dict(row)
                extended[other_term] = vid
                out.append(extended)
                meter.charge(self.cost.binding_ns, category="explore")
        return out

    def _expand_index(self, rows: List[Row], pattern: TriplePattern, eid: int,
                      access: StoreAccess, meter: LatencyMeter,
                      index_owner: Optional[int] = None) -> List[Row]:
        """Enumerate subjects from the predicate index, then bind objects.

        With ``index_owner``, only start vertices owned by that node are
        expanded — fork-join/migrate branches partition the start set.
        """
        if index_owner is not None:
            local_fn = getattr(access, "index_vertices_local", None)
            if local_fn is not None:
                subjects = local_fn(eid, DIR_OUT, index_owner, meter)
            else:
                subjects = [vid
                            for vid in access.index_vertices(eid, DIR_OUT,
                                                             meter)
                            if self.cluster.owner_of(vid) == index_owner]
        else:
            subjects = access.index_vertices(eid, DIR_OUT, meter)
        out: List[Row] = []
        for row in rows:
            for svid in subjects:
                if is_variable(pattern.subject):
                    if pattern.subject in row and row[pattern.subject] != svid:
                        continue
                    seed = dict(row)
                    seed[pattern.subject] = svid
                else:
                    resolved = access.resolve_entity(pattern.subject)
                    if resolved != svid:
                        continue
                    seed = dict(row)
                neighbors = access.neighbors(svid, eid, DIR_OUT, meter)
                out.extend(self._bind_side([seed], pattern.object, neighbors,
                                           access, meter))
        return out

    # -- projection ------------------------------------------------------------
    def _project(self, plan: ExecutionPlan, rows: List[Row],
                 meter: LatencyMeter) -> ExecutionResult:
        query = plan.query
        if query.is_ask:
            return ExecutionResult(variables=[],
                                   rows=[()] if rows else [])
        if query.aggregates:
            if self.strings is None:
                raise PlanError(
                    "aggregates need a string server; construct the "
                    "explorer with GraphExplorer(cluster, strings)")
            from repro.sparql.evaluate import aggregate_rows
            out = aggregate_rows(rows, query, self.strings.entity_name,
                                 meter, self.cost)
            return ExecutionResult(variables=query.output_columns(),
                                   rows=_slice(out, query))
        variables = query.projected()
        result = ExecutionResult(variables=variables)
        seen = set()
        for row in rows:
            projected = tuple(row.get(var, -1) for var in variables)
            if projected not in seen:
                seen.add(projected)
                result.rows.append(projected)
        meter.charge(self.cost.binding_ns, times=len(result.rows),
                     category="project")
        result.rows = _slice(result.rows, query)
        return result


def _slice(rows: List[Tuple[int, ...]], query) -> List[Tuple[int, ...]]:
    """Apply the query's OFFSET/LIMIT to the solution sequence."""
    if query.offset:
        rows = rows[query.offset:]
    if query.limit is not None:
        rows = rows[:query.limit]
    return rows
