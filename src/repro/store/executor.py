"""The graph-exploration query executor.

Evaluates an :class:`~repro.sparql.planner.ExecutionPlan` by extending
variable-binding rows one pattern at a time, exactly as Wukong's
exploration engine: each step turns the current binding set into neighbour
lookups, so intermediate results stay pruned instead of exploding through
relational joins (the "join bomb" the paper contrasts against).

Three execution modes mirror the paper (§5, "Leveraging RDMA"):

*in-place* — one worker on one node runs the whole query, fetching remote
data with one-sided RDMA reads.  Chosen for selective queries (constant
start), which touch a modest amount of data.

*fork-join* — the query forks to every node; each branch explores from its
local portion of the start set (partitioned by vertex owner) and partial
results are gathered at the home node.  Chosen for non-selective
(index-start) queries; latency is the slowest branch plus fork/gather.

*migrate* — the non-RDMA fallback: execution hops between nodes following
the data, shipping binding rows in bulk messages between steps instead of
issuing per-read round trips.  Every neighbour lookup is local by
construction (rows are routed to the owner of their step's start vertex).

Sources are pluggable: the caller supplies an ``access_factory`` mapping a
node id to a pattern->:class:`~repro.store.distributed.StoreAccess`
resolver, so the same executor drives one-shot queries (persistent store
only) and continuous queries (stream windows + persistent store) — the
global-plan advantage of the integrated design.

Fast path: each plan is *compiled* once — variables get fixed slot
indices, and binding rows become plain lists indexed by slot (``None`` =
unbound) instead of per-row dicts.  Step patterns, the FILTER schedule and
UNION/OPTIONAL sub-plans are resolved to slots at compile time and cached
on the plan.  This only changes wall-clock speed: lookup and binding
charges are issued for exactly the same events as the dict-row
implementation (aggregated per expansion with integer-valued constants,
so the simulated totals are bit-identical — see DESIGN.md, "Wall-clock vs
simulated time").

Columnar batch exploration: every plain step sequence — in-place,
fork-join and migrate alike, with or without a FILTER schedule — keeps
the whole binding set as a :class:`_Batch` — one flat column per slot —
instead of one list per row.  Expanding a step then works on whole
columns (neighbour-list concatenation, ``[v] * k`` repetition, index
selections), the per-batch key probes are deduplicated exactly as the
row path's per-expansion neighbour cache did, and projection zips the
projected columns straight into result tuples.  BigSR (arXiv:1804.04367)
motivates the layout: batch/columnar evaluation amortizes per-row
interpreter overhead for large binding sets.  The charge discipline is
unchanged — neighbour fetches are issued once per distinct start vertex
in first-occurrence row order (so even fractional-valued remote-read
charges accumulate in the same order) and binding charges aggregate with
integer-valued constants, keeping simulated time bit-identical to the
row-at-a-time path (guarded by ``tests/core/test_determinism.py``).

The distributed modes ship whole column batches between nodes: routing
is a columnar partition-by-owner (``_Batch.select`` over first-occurrence
owner groups, so per-node row order matches the row path's appends), each
per-node branch expands columnar under its own spawned meter, and the
bulk-message charge per hop is the row path's largest-single-transfer
formula verbatim.  Step-scheduled FILTERs evaluate as vectorized selects
over slot columns, memoizing the (charge-free) predicate evaluation per
distinct operand value; the per-row ``filter_ns`` charges aggregate into
one integer-valued call.  ``use_batch=False`` keeps the row-at-a-time
kernels — the differential tests and the wall-clock bench run both paths
and require identical results, charges and (for the bench) a speedup.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from itertools import chain, compress, count, repeat
from operator import contains, itemgetter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import PlanError
from repro.rdf.ids import DIR_IN, DIR_OUT
from repro.sim.cluster import Cluster
from repro.sim.cost import LatencyMeter
from repro.sparql.ast import TriplePattern, is_variable
from repro.sparql.planner import (
    BOUND_OBJECT,
    BOUND_SUBJECT,
    CONST_OBJECT,
    CONST_SUBJECT,
    ExecutionPlan,
    INDEX_START,
    PlannedStep,
)
from repro.store.distributed import StoreAccess

#: One variable-binding row in the public (dict) API.
Row = Dict[str, int]

#: Internal fast-path row: one value per compiled slot, None = unbound.
SlotRow = List[Optional[int]]

#: Maps a pattern to the data source it should read.
AccessResolver = Callable[[TriplePattern], StoreAccess]

#: Maps a node id to that node's pattern resolver.
AccessFactory = Callable[[int], AccessResolver]

#: Estimated wire size of one binding row during migration/gather
#: (a few 8-byte bindings plus framing).
_ROW_BYTES = 48


@dataclass
class ExecutionResult:
    """Rows produced by one query execution."""

    variables: List[str]
    rows: List[Tuple[int, ...]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def as_dicts(self) -> List[Dict[str, int]]:
        return [dict(zip(self.variables, row)) for row in self.rows]

    def as_bool(self) -> bool:
        """The boolean answer of an ASK query (any solution exists)."""
        return bool(self.rows)


class _CompiledStep:
    """One planned step with its variables resolved to slot indices."""

    __slots__ = ("kind", "pattern", "subject", "predicate", "object",
                 "subj_slot", "obj_slot")

    def __init__(self, step: PlannedStep, slots: Dict[str, int]):
        pattern = step.pattern
        self.kind = step.kind
        self.pattern = pattern
        self.subject = pattern.subject
        self.predicate = pattern.predicate
        self.object = pattern.object
        self.subj_slot = slots[pattern.subject] \
            if is_variable(pattern.subject) else None
        self.obj_slot = slots[pattern.object] \
            if is_variable(pattern.object) else None


class _CompiledFilter:
    """One FILTER expression with its operands resolved to slot indices.

    Batch evaluation selects surviving row indices over slot columns,
    memoizing the (charge-free) predicate evaluation per distinct operand
    value — the verdict of ``filter_matches`` is a pure function of the
    operand vids, so a memo hit is semantically identical to re-running
    it.  Filter charges are issued by the caller, aggregated exactly as
    the row path charges them (``filter_ns`` per row per filter, before
    any evaluation).
    """

    __slots__ = ("expr", "left_slot", "right_slot")

    def __init__(self, expr, slots: Dict[str, int]):
        self.expr = expr
        self.left_slot = slots.get(expr.left) \
            if is_variable(expr.left) else None
        self.right_slot = slots.get(expr.right) \
            if is_variable(expr.right) else None

    def select(self, batch: "_Batch", indices: List[int], name_of,
               resolve) -> List[int]:
        """The sub-list of ``indices`` whose rows satisfy the filter."""
        from repro.sparql.evaluate import filter_matches
        expr = self.expr
        lcol = batch.cols[self.left_slot] \
            if self.left_slot is not None else None
        rcol = batch.cols[self.right_slot] \
            if self.right_slot is not None else None
        verdicts: Dict[Tuple, bool] = {}
        out: List[int] = []
        append = out.append
        for i in indices:
            key = (lcol[i] if lcol is not None else None,
                   rcol[i] if rcol is not None else None)
            verdict = verdicts.get(key)
            if verdict is None:
                row = {}
                if lcol is not None:
                    row[expr.left] = lcol[i]
                if rcol is not None:
                    row[expr.right] = rcol[i]
                verdict = verdicts[key] = filter_matches(
                    expr, row, name_of, resolve)
            if verdict:
                append(i)
        return out


class _CompiledPlan:
    """Slot layout + precompiled steps/filters/sub-plans of one plan."""

    __slots__ = ("slots", "nslots", "steps", "filters_at", "cfilters_at",
                 "leftover_filters", "unions", "optionals",
                 "project_slots", "project_getter")

    def __init__(self, plan: ExecutionPlan):
        from repro.sparql.planner import plan_steps
        query = plan.query
        self.slots: Dict[str, int] = {}
        for var in query.variables():
            if var not in self.slots:
                self.slots[var] = len(self.slots)
        self.nslots = len(self.slots)
        self.steps = [_CompiledStep(step, self.slots) for step in plan.steps]

        # FILTER schedule: each filter runs at the earliest step binding
        # its variables; filters over OPTIONAL-only variables are left over.
        if query.filters:
            from repro.sparql.evaluate import filters_by_step
            bound: set = set()
            step_vars = []
            for step in plan.steps:
                bound |= set(step.pattern.variables())
                step_vars.append(set(bound))
            self.filters_at, self.leftover_filters = \
                filters_by_step(query, step_vars)
            self.cfilters_at = [
                [_CompiledFilter(expr, self.slots) for expr in step_filters]
                for step_filters in self.filters_at]
        else:
            self.filters_at, self.leftover_filters = None, []
            self.cfilters_at = None

        # UNION branches and OPTIONAL groups are planned with the variables
        # already bound upstream marked as prebound, exactly as the
        # uncompiled executor planned them per execution.
        prebound = set(query.mandatory_variables())
        self.unions: List[List[List[_CompiledStep]]] = []
        for union in query.unions:
            self.unions.append(
                [[_CompiledStep(step, self.slots)
                  for step in plan_steps(branch, prebound=prebound)]
                 for branch in union])
            prebound |= {var for pattern in union[0]
                         for var in pattern.variables()}
        self.optionals: List[List[_CompiledStep]] = []
        for group in query.optionals:
            self.optionals.append(
                [_CompiledStep(step, self.slots)
                 for step in plan_steps(group, prebound=prebound)])
            prebound |= {var for pattern in group
                         for var in pattern.variables()}

        #: Slot index per projected variable (None: never bound -> -1).
        self.project_slots = [(var, self.slots.get(var))
                              for var in query.projected()]
        #: C-speed row -> projected tuple, valid when every projected
        #: variable has a slot bound in every surviving row (steps and
        #: unions bind their variables unconditionally; only OPTIONAL
        #: groups leave variables unbound).
        proj = [slot for _, slot in self.project_slots]
        if proj and None not in proj and not query.optionals:
            getter = itemgetter(*proj)
            self.project_getter = (lambda row: (getter(row),)) \
                if len(proj) == 1 else getter
        else:
            self.project_getter = None


class _RowView:
    """Dict-like read view of one slot row (for shared FILTER/aggregate
    evaluation, which addresses rows by variable name)."""

    __slots__ = ("slots", "row")

    def __init__(self, slots: Dict[str, int], row: SlotRow):
        self.slots = slots
        self.row = row

    def get(self, var: str, default=None):
        slot = self.slots.get(var)
        if slot is None:
            return default
        value = self.row[slot]
        return default if value is None else value

    def __contains__(self, var: str) -> bool:
        slot = self.slots.get(var)
        return slot is not None and self.row[slot] is not None


class _Batch:
    """A binding set in columnar layout: one flat column per slot.

    ``cols[slot]`` is either None (the slot is unbound in every row) or a
    list of ``nrows`` vids.  Columns are treated as immutable: kernels
    build new column lists (or share unchanged ones) instead of mutating,
    so batches may alias columns and store-owned neighbour lists freely.
    The layout is only used on uniform paths (plain step sequences, where
    a step binds its slots in *all* rows), never for OPTIONAL-produced
    mixed rows — those stay row-at-a-time.

    ``distinct`` tracks whether the rows are provably pairwise distinct
    (over their bound slots).  Expansion kernels prove it forward: a step
    that extends distinct rows with duplicate-free neighbour lists yields
    distinct rows again (every input slot value is preserved, so rows
    from different inputs still differ), and row selections preserve it.
    Projection uses the flag to skip the result dedup when the projected
    slots cover every bound slot.  False is always sound — it just means
    "unknown", and the dedup runs.
    """

    __slots__ = ("nrows", "cols", "distinct")

    def __init__(self, nrows: int, cols: List[Optional[List[int]]],
                 distinct: bool = False):
        self.nrows = nrows
        self.cols = cols
        self.distinct = distinct

    @staticmethod
    def empty(nslots: int) -> "_Batch":
        return _Batch(0, [None] * nslots, distinct=True)

    @staticmethod
    def from_rows(rows: List[SlotRow], nslots: int) -> "_Batch":
        if not rows:
            return _Batch.empty(nslots)
        if not nslots:
            return _Batch(len(rows), [])
        cols: List[Optional[List[int]]] = [list(c) for c in zip(*rows)]
        # Uniform paths bind slots for all rows or none, so checking the
        # first element classifies the whole column.  Row provenance is
        # unknown, so ``distinct`` stays False (dedup will run).
        return _Batch(len(rows),
                      [None if c[0] is None else c for c in cols])

    def to_rows(self) -> List[SlotRow]:
        if not self.nrows:
            return []
        if not self.cols:
            return [[] for _ in range(self.nrows)]
        cols = [c if c is not None else [None] * self.nrows
                for c in self.cols]
        return [list(row) for row in zip(*cols)]

    def select(self, indices: List[int]) -> "_Batch":
        """The sub-batch of the given row indices (columns shared when
        the selection keeps every row).  Selections of distinct rows stay
        distinct (indices are unique by construction)."""
        if len(indices) == self.nrows:
            return self
        cols = [c if c is None else list(map(c.__getitem__, indices))
                for c in self.cols]
        return _Batch(len(indices), cols, distinct=self.distinct)

    @staticmethod
    def concat(parts: List["_Batch"], nslots: int) -> "_Batch":
        """Row-wise concatenation, preserving part order.

        Parts on a uniform path share the same bound-slot set; a column
        bound in some parts but not others (never produced by the step
        kernels) is filled with None for the unbound parts.

        ``distinct`` carries over when every part is distinct: the
        distributed drivers (the only callers) concatenate per-node parts
        that descend from disjoint row subsets of one distinct batch — a
        routing partition, or an index start partitioned by vertex owner
        — and expansions preserve every input slot value, so rows from
        different parts always differ on some slot.
        """
        parts = [part for part in parts if part.nrows]
        if not parts:
            return _Batch.empty(nslots)
        if len(parts) == 1:
            return parts[0]
        nrows = sum(part.nrows for part in parts)
        cols: List[Optional[List[int]]] = []
        for slot in range(nslots):
            if all(part.cols[slot] is None for part in parts):
                cols.append(None)
                continue
            col: List[int] = []
            for part in parts:
                source = part.cols[slot]
                col.extend(source if source is not None
                           else [None] * part.nrows)
            cols.append(col)
        return _Batch(nrows, cols,
                      distinct=all(part.distinct for part in parts))


class GraphExplorer:
    """Executes plans against pluggable store accesses.

    ``strings`` (the string server) is needed to evaluate FILTER
    expressions and aggregates, whose semantics depend on entity names;
    plain pattern queries run without it.
    """

    def __init__(self, cluster: Cluster, strings=None,
                 use_batch: bool = True):
        self.cluster = cluster
        self.cost = cluster.cost
        self.strings = strings
        #: Columnar batch kernels for the step phase (all modes); False
        #: keeps the row-at-a-time kernels.  Wall-clock-only: both paths
        #: issue bit-identical simulated charges.
        self.use_batch = use_batch
        #: Wall-clock-only counters: executions whose step phase ran
        #: columnar vs row-at-a-time (surfaced via ``core.stats``).
        self.batch_executions = 0
        self.row_executions = 0
        #: When set (a dict), wall-clock seconds are accumulated under
        #: "explore" and "project" per execution (bench instrumentation).
        self.wall_stats = None
        #: Observability hook: when a tracer is attached, executions add
        #: explore/project phase marks and fork-join branch spans to the
        #: tracer's current activity.  Read-only on meters (zero-cost in
        #: simulated time).
        self.tracer = None

    # -- compilation --------------------------------------------------------
    def _compile(self, plan: ExecutionPlan) -> _CompiledPlan:
        """The compiled form of ``plan``, cached on the plan itself (the
        layout is purely structural, so it is explorer-independent)."""
        compiled = getattr(plan, "_compiled", None)
        if compiled is None:
            compiled = _CompiledPlan(plan)
            plan._compiled = compiled
        return compiled

    # -- public entry points ------------------------------------------------
    def execute(self, plan: ExecutionPlan, access_factory: AccessFactory,
                meter: LatencyMeter, home_node: int = 0,
                mode: str = "auto") -> ExecutionResult:
        """Run ``plan`` and return projected, deduplicated rows.

        ``mode`` is ``"auto"`` (migrate when the fabric lacks RDMA;
        fork-join for index starts on multi-node clusters; in-place
        otherwise), ``"in_place"``, ``"fork_join"`` or ``"migrate"``.
        """
        if not plan.steps and not plan.query.unions:
            raise PlanError("cannot execute an empty plan")
        if plan.query.filters and self.strings is None:
            raise PlanError(
                "FILTER evaluation needs a string server; construct the "
                "explorer with GraphExplorer(cluster, strings)")
        compiled = self._compile(plan)
        if mode == "auto":
            if not self.cluster.fabric.use_rdma \
                    and self.cluster.num_nodes > 1:
                mode = "migrate"
            elif plan.steps and plan.steps[0].kind == INDEX_START \
                    and self.cluster.num_nodes > 1:
                mode = "fork_join"
            else:
                mode = "in_place"
        wall = self.wall_stats
        act = self.tracer.current if self.tracer is not None else None
        if act is not None and act.meter is not meter:
            act = None  # the live activity is not this execution's
        started = time.perf_counter() if wall is not None else 0.0
        if not plan.steps:
            rows = [[None] * compiled.nslots]  # a pure-UNION WHERE block
        elif self.use_batch:
            # Columnar batch fast path: uniform step sequence in any mode
            # (FILTER schedules evaluate as vectorized selects).  Falls
            # back to rows at the UNION/OPTIONAL boundary.
            if mode == "in_place":
                batch = self._run_steps_batch(compiled,
                                              access_factory(home_node),
                                              meter)
            elif mode in ("fork_join", "migrate"):
                batch = self._run_migrate_batch(compiled, access_factory,
                                                meter, home_node)
                if mode == "fork_join":
                    meter.charge(self.cost.join_gather_ns,
                                 category="gather")
            else:
                raise PlanError(f"unknown execution mode: {mode}")
            self.batch_executions += 1
            if not (compiled.unions or compiled.optionals
                    or compiled.leftover_filters):
                if wall is not None:
                    explored = time.perf_counter()
                    wall["explore"] = wall.get("explore", 0.0) \
                        + (explored - started)
                if act is not None:
                    act.mark("explore", mode=mode)
                result = self._project_batch(plan, compiled, batch, meter)
                if wall is not None:
                    wall["project"] = wall.get("project", 0.0) \
                        + (time.perf_counter() - explored)
                if act is not None:
                    act.mark("project")
                return result
            rows = batch.to_rows()
        elif mode == "in_place":
            self.row_executions += 1
            rows = self._run_steps(compiled, access_factory(home_node),
                                   meter)
        elif mode == "fork_join":
            self.row_executions += 1
            rows = self._run_fork_join(compiled, access_factory, meter,
                                       home_node)
        elif mode == "migrate":
            self.row_executions += 1
            rows = self._run_migrate(compiled, access_factory, meter,
                                     home_node)
        else:
            raise PlanError(f"unknown execution mode: {mode}")
        if compiled.unions and rows:
            rows = self._apply_unions(compiled, rows,
                                      access_factory(home_node), meter)
        if compiled.optionals and rows:
            rows = self._apply_optionals(compiled, rows,
                                         access_factory(home_node), meter)
        if compiled.leftover_filters and rows:
            # Filters over OPTIONAL-bound variables run once those resolve
            # (an unmatched OPTIONAL leaves them unbound -> row eliminated).
            from repro.sparql.evaluate import apply_filters
            first_access = access_factory(home_node)(plan.steps[0].pattern)
            views = apply_filters(
                [_RowView(compiled.slots, row) for row in rows],
                compiled.leftover_filters, self.strings.entity_name,
                first_access.resolve_entity, meter, self.cost, strict=False)
            rows = [view.row for view in views]
        if wall is not None:
            explored = time.perf_counter()
            wall["explore"] = wall.get("explore", 0.0) + (explored - started)
        if act is not None:
            act.mark("explore", mode=mode)
        result = self._project(plan, compiled, rows, meter)
        if wall is not None:
            wall["project"] = wall.get("project", 0.0) \
                + (time.perf_counter() - explored)
        if act is not None:
            act.mark("project")
        return result

    def explore(self, steps: Sequence[PlannedStep],
                access_for: AccessResolver, meter: LatencyMeter,
                seeds: Optional[List[Row]] = None) -> List[Row]:
        """Run bare plan steps from ``seeds`` (default: one empty row).

        Returns raw binding rows without projection.  Used for embedded
        sub-queries whose seed bindings come from another system (the
        composite design) and by tests.  Rows are dicts at this boundary;
        an ad-hoc slot layout is compiled for the given steps.
        """
        slots: Dict[str, int] = {}
        for step in steps:
            for var in step.pattern.variables():
                if var not in slots:
                    slots[var] = len(slots)
        if seeds:
            for seed in seeds:
                for var in seed:
                    if var not in slots:
                        slots[var] = len(slots)
        csteps = [_CompiledStep(step, slots) for step in steps]
        nslots = len(slots)
        if seeds is not None:
            rows = []
            for seed in seeds:
                row: SlotRow = [None] * nslots
                for var, vid in seed.items():
                    row[slots[var]] = vid
                rows.append(row)
        else:
            rows = [[None] * nslots]
        rows = self._explore_rows(csteps, rows, access_for, meter)
        return [{var: row[slot] for var, slot in slots.items()
                 if row[slot] is not None} for row in rows]

    # -- UNION / OPTIONAL ---------------------------------------------------
    def _apply_unions(self, compiled: _CompiledPlan, rows: List[SlotRow],
                      access_for: AccessResolver,
                      meter: LatencyMeter) -> List[SlotRow]:
        """Alternate each UNION: concatenate the branches' extensions.

        Branches bind identical variable sets (the parser enforces it),
        so downstream joins and projections see uniform rows.  Each row is
        explored separately (per-row neighbour caches), preserving the
        exact lookup charges of the uncompiled executor.
        """
        for branches in compiled.unions:
            combined: List[SlotRow] = []
            for csteps in branches:
                for row in rows:
                    combined.extend(self._explore_rows(
                        csteps, [row.copy()], access_for, meter))
            rows = combined
            if not rows:
                break
        return rows

    def _apply_optionals(self, compiled: _CompiledPlan, rows: List[SlotRow],
                         access_for: AccessResolver,
                         meter: LatencyMeter) -> List[SlotRow]:
        """Left-outer-join each OPTIONAL group onto the solution rows.

        Rows the group cannot extend survive with its variables unbound —
        SPARQL's OPTIONAL semantics.  Optional resolution runs at the home
        node (seeds are the already-pruned solution set).
        """
        for csteps in compiled.optionals:
            extended: List[SlotRow] = []
            for row in rows:
                matches = self._explore_rows(csteps, [row.copy()],
                                             access_for, meter)
                if matches:
                    extended.extend(matches)
                else:
                    extended.append(row)
            rows = extended
        return rows

    def _apply_step_filters(self, compiled: _CompiledPlan,
                            rows: List[SlotRow], filters,
                            access: StoreAccess,
                            meter: LatencyMeter) -> List[SlotRow]:
        if not filters or not rows:
            return rows
        from repro.sparql.evaluate import apply_filters
        views = apply_filters([_RowView(compiled.slots, row) for row in rows],
                              filters, self.strings.entity_name,
                              access.resolve_entity, meter, self.cost)
        return [view.row for view in views]

    def _apply_step_filters_batch(self, batch: _Batch,
                                  cfilters: List[_CompiledFilter],
                                  access: StoreAccess,
                                  meter: LatencyMeter) -> _Batch:
        """Vectorized step-scheduled FILTERs over slot columns.

        The row path charges ``filter_ns`` per row per filter *before*
        evaluating that row (regardless of the verdict), so the whole
        block aggregates into one integer-valued charge; evaluation
        itself is charge-free and memoized per distinct operand value.
        """
        if not cfilters or not batch.nrows:
            return batch
        meter.charge(self.cost.filter_ns,
                     times=batch.nrows * len(cfilters), category="filter")
        name_of = self.strings.entity_name
        resolve = access.resolve_entity
        indices = list(range(batch.nrows))
        for cfilter in cfilters:
            if not indices:
                break
            indices = cfilter.select(batch, indices, name_of, resolve)
        return batch.select(indices)

    # -- fork-join ----------------------------------------------------------
    def _run_fork_join(self, compiled: _CompiledPlan,
                       access_factory: AccessFactory, meter: LatencyMeter,
                       home_node: int) -> List[SlotRow]:
        """Distributed execution with explicit fork/gather bookkeeping.

        The dataflow is the migrating execution (rows follow the data);
        fork-join adds the per-node dispatch cost and, with RDMA enabled,
        moves every bulk transfer over one-sided verbs instead of TCP.
        """
        rows = self._run_migrate(compiled, access_factory, meter, home_node)
        meter.charge(self.cost.join_gather_ns, category="gather")
        return rows

    # -- migrating execution ---------------------------------------------------
    def _run_migrate(self, compiled: _CompiledPlan,
                     access_factory: AccessFactory, meter: LatencyMeter,
                     home_node: int) -> List[SlotRow]:
        """Distributed execution: rows follow the data in bulk transfers."""
        resolvers: Dict[int, AccessResolver] = {
            node.node_id: access_factory(node.node_id)
            for node in self.cluster.alive_nodes()
        }
        located: Dict[int, List[SlotRow]] = {
            home_node: [[None] * compiled.nslots]}
        act = self.tracer.current if self.tracer is not None else None
        if act is not None and act.meter is not meter:
            act = None  # the live activity is not this execution's
        for index, cstep in enumerate(compiled.steps):
            routed = self._route(cstep, located, resolvers, meter)
            if not routed:
                located = {}
                break
            group = act.group(f"step{index}") if act is not None else None
            branches = []
            next_located: Dict[int, List[SlotRow]] = {}
            for node_id, rows in routed.items():
                branch = meter.spawn()
                access = resolvers[node_id](cstep.pattern)
                out = self._expand(cstep, rows, access,
                                   branch, index_owner=node_id
                                   if cstep.kind == INDEX_START else None)
                if compiled.filters_at is not None:
                    out = self._apply_step_filters(
                        compiled, out, compiled.filters_at[index], access,
                        branch)
                if out:
                    next_located[node_id] = out
                branches.append(branch)
                if group is not None:
                    group.branch(f"node{node_id}", branch, node=node_id,
                                 rows=len(out))
            meter.join_parallel(branches)
            if group is not None:
                group.close()
            located = next_located
            if not located:
                break
        # Gather partial results back at the home node (parallel sends).
        group = act.group("gather") if act is not None else None
        gather = []
        all_rows: List[SlotRow] = []
        for node_id, rows in located.items():
            branch = meter.spawn()
            if node_id != home_node and rows:
                self.cluster.fabric.bulk_transfer(
                    branch, _ROW_BYTES * len(rows), category="network")
            gather.append(branch)
            all_rows.extend(rows)
            if group is not None:
                group.branch(f"node{node_id}", branch, node=node_id,
                             rows=len(rows))
        meter.join_parallel(gather)
        if group is not None:
            group.close()
        return all_rows

    def _route(self, cstep: _CompiledStep,
               located: Dict[int, List[SlotRow]],
               resolvers: Dict[int, AccessResolver],
               meter: LatencyMeter) -> Dict[int, List[SlotRow]]:
        """Move rows to the owner of the step's start vertex.

        Migration messages from different nodes are concurrent; the meter
        is charged with the largest transfer of the round.
        """
        all_rows = [row for rows in located.values() for row in rows]
        routed: Dict[int, List[SlotRow]] = defaultdict(list)
        if cstep.kind == INDEX_START:
            # Broadcast: every node explores its local start vertices.
            # Dispatching the sub-query to each node is the fork cost.
            # Rows are never mutated in place, so branches can share them.
            meter.charge(self.cost.fork_ns, times=len(resolvers),
                         category="fork")
            for node_id in resolvers:
                routed[node_id] = list(all_rows)
        elif cstep.kind in (CONST_SUBJECT, CONST_OBJECT):
            term = cstep.subject if cstep.kind == CONST_SUBJECT \
                else cstep.object
            any_resolver = next(iter(resolvers.values()))
            vid = any_resolver(cstep.pattern).resolve_entity(term)
            if vid is None:
                return {}
            routed[self.cluster.owner_of(vid)] = all_rows
        else:
            slot = cstep.subj_slot if cstep.kind == BOUND_SUBJECT \
                else cstep.obj_slot
            owner_of = self.cluster.owner_of
            for row in all_rows:
                routed[owner_of(row[slot])].append(row)
        # Charge the migration round: the largest single transfer that
        # actually crosses nodes (sends proceed in parallel).
        largest = 0
        for dst, rows in routed.items():
            stayed = len(located.get(dst, ()))
            moving = max(0, len(rows) - stayed)
            largest = max(largest, moving)
        if largest and len(located) == 1 and set(located) == set(routed):
            largest = 0  # everything already sits on the right node
        if largest:
            self.cluster.fabric.bulk_transfer(meter, _ROW_BYTES * largest,
                                              category="network")
        return dict(routed)

    # -- columnar distributed execution ---------------------------------------
    def _run_migrate_batch(self, compiled: _CompiledPlan,
                           access_factory: AccessFactory,
                           meter: LatencyMeter,
                           home_node: int) -> _Batch:
        """Columnar :meth:`_run_migrate`: whole column batches follow the
        data between nodes.

        Charge-equivalent by construction: routing partitions the merged
        batch by owner in first-occurrence row order (so per-node row
        order matches the row path's appends), per-node branches expand
        under spawned meters joined in the same node order (the
        first-strict-maximum branch — and with it the merged category
        breakdown — is the same one), and the gather sends the same
        per-node row counts.
        """
        resolvers: Dict[int, AccessResolver] = {
            node.node_id: access_factory(node.node_id)
            for node in self.cluster.alive_nodes()
        }
        located: Dict[int, _Batch] = {
            home_node: _Batch(1, [None] * compiled.nslots, distinct=True)}
        act = self.tracer.current if self.tracer is not None else None
        if act is not None and act.meter is not meter:
            act = None  # the live activity is not this execution's
        for index, cstep in enumerate(compiled.steps):
            routed = self._route_batch(cstep, compiled.nslots, located,
                                       resolvers, meter)
            if not routed:
                located = {}
                break
            group = act.group(f"step{index}") if act is not None else None
            branches = []
            next_located: Dict[int, _Batch] = {}
            for node_id, batch in routed.items():
                branch = meter.spawn()
                access = resolvers[node_id](cstep.pattern)
                out = self._expand_batch(cstep, batch, access, branch,
                                         index_owner=node_id
                                         if cstep.kind == INDEX_START
                                         else None)
                if compiled.cfilters_at is not None:
                    out = self._apply_step_filters_batch(
                        out, compiled.cfilters_at[index], access, branch)
                if out.nrows:
                    next_located[node_id] = out
                branches.append(branch)
                if group is not None:
                    group.branch(f"node{node_id}", branch, node=node_id,
                                 rows=out.nrows)
            meter.join_parallel(branches)
            if group is not None:
                group.close()
            located = next_located
            if not located:
                break
        # Gather partial results back at the home node (parallel sends).
        group = act.group("gather") if act is not None else None
        gather = []
        parts: List[_Batch] = []
        for node_id, batch in located.items():
            branch = meter.spawn()
            if node_id != home_node and batch.nrows:
                self.cluster.fabric.bulk_transfer(
                    branch, _ROW_BYTES * batch.nrows, category="network")
            gather.append(branch)
            parts.append(batch)
            if group is not None:
                group.branch(f"node{node_id}", branch, node=node_id,
                             rows=batch.nrows)
        meter.join_parallel(gather)
        if group is not None:
            group.close()
        return _Batch.concat(parts, compiled.nslots)

    def _route_batch(self, cstep: _CompiledStep, nslots: int,
                     located: Dict[int, _Batch],
                     resolvers: Dict[int, AccessResolver],
                     meter: LatencyMeter) -> Dict[int, _Batch]:
        """Columnar :meth:`_route`: partition the merged batch by the
        owner of each row's start vertex.

        Owner groups are keyed in first-occurrence row order over the
        concatenated batch — the same node order (and per-node row order)
        the row path's per-row appends produce — and the migration round
        charges the row path's largest-single-transfer formula verbatim.
        """
        merged = _Batch.concat(list(located.values()), nslots)
        routed: Dict[int, _Batch] = {}
        if cstep.kind == INDEX_START:
            # Broadcast: every node explores its local start vertices.
            # Columns are immutable, so branches can share the batch.
            meter.charge(self.cost.fork_ns, times=len(resolvers),
                         category="fork")
            for node_id in resolvers:
                routed[node_id] = merged
        elif cstep.kind in (CONST_SUBJECT, CONST_OBJECT):
            term = cstep.subject if cstep.kind == CONST_SUBJECT \
                else cstep.object
            any_resolver = next(iter(resolvers.values()))
            vid = any_resolver(cstep.pattern).resolve_entity(term)
            if vid is None:
                return {}
            routed[self.cluster.owner_of(vid)] = merged
        else:
            slot = cstep.subj_slot if cstep.kind == BOUND_SUBJECT \
                else cstep.obj_slot
            # Inlined Cluster.owner_of (hash partitioning by modulo): the
            # per-row method call dominates the partition loop otherwise.
            num_nodes = len(self.cluster.nodes)
            groups: Dict[int, List[int]] = {}
            column = merged.cols[slot]
            for i, vid in enumerate(column):
                owner = vid % num_nodes
                group = groups.get(owner)
                if group is None:
                    groups[owner] = [i]
                else:
                    group.append(i)
            routed = {node_id: merged.select(indices)
                      for node_id, indices in groups.items()}
        largest = 0
        for dst, batch in routed.items():
            stayed_batch = located.get(dst)
            stayed = stayed_batch.nrows if stayed_batch is not None else 0
            moving = max(0, batch.nrows - stayed)
            largest = max(largest, moving)
        if largest and len(located) == 1 and set(located) == set(routed):
            largest = 0  # everything already sits on the right node
        if largest:
            self.cluster.fabric.bulk_transfer(meter, _ROW_BYTES * largest,
                                              category="network")
        return routed

    # -- columnar batch exploration -------------------------------------------
    def _run_steps_batch(self, compiled: _CompiledPlan,
                         access_for: AccessResolver,
                         meter: LatencyMeter) -> _Batch:
        """Run all steps on one node over a columnar batch.

        Charge-equivalent to :meth:`_run_steps`: every store access,
        binding and filter charge is issued for the same event in the
        same order.
        """
        batch = _Batch(1, [None] * compiled.nslots, distinct=True)
        for index, cstep in enumerate(compiled.steps):
            access = access_for(cstep.pattern)
            batch = self._expand_batch(cstep, batch, access, meter)
            if compiled.cfilters_at is not None:
                batch = self._apply_step_filters_batch(
                    batch, compiled.cfilters_at[index], access, meter)
            if not batch.nrows:
                break
        return batch

    def _expand_batch(self, cstep: _CompiledStep, batch: _Batch,
                      access: StoreAccess, meter: LatencyMeter,
                      index_owner: Optional[int] = None) -> _Batch:
        eid = access.resolve_predicate(cstep.predicate)
        if eid is None:
            return _Batch.empty(len(batch.cols))
        kind = cstep.kind
        if kind == CONST_SUBJECT:
            svid = access.resolve_entity(cstep.subject)
            if svid is None:
                return _Batch.empty(len(batch.cols))
            neighbors = access.neighbors(svid, eid, DIR_OUT, meter)
            return self._bind_side_batch(batch, cstep.obj_slot, cstep.object,
                                         neighbors, access, meter)
        if kind == CONST_OBJECT:
            ovid = access.resolve_entity(cstep.object)
            if ovid is None:
                return _Batch.empty(len(batch.cols))
            neighbors = access.neighbors(ovid, eid, DIR_IN, meter)
            return self._bind_side_batch(batch, cstep.subj_slot,
                                         cstep.subject, neighbors, access,
                                         meter)
        if kind == BOUND_SUBJECT:
            return self._expand_bound_batch(batch, cstep.subj_slot,
                                            cstep.obj_slot, cstep.object,
                                            eid, DIR_OUT, access, meter)
        if kind == BOUND_OBJECT:
            return self._expand_bound_batch(batch, cstep.obj_slot,
                                            cstep.subj_slot, cstep.subject,
                                            eid, DIR_IN, access, meter)
        if kind == INDEX_START:
            return self._expand_index_batch(batch, cstep, eid, access, meter,
                                            index_owner)
        raise PlanError(f"unknown step kind: {kind}")

    def _bind_side_batch(self, batch: _Batch, slot: Optional[int],
                         term: str, neighbors: List[int],
                         access: StoreAccess,
                         meter: LatencyMeter) -> _Batch:
        """Columnar :meth:`_bind_side`: one shared neighbour list binds or
        filters one side of the whole batch."""
        nrows = batch.nrows
        nslots = len(batch.cols)
        if slot is None:  # the term is a constant: match, don't bind
            required = access.resolve_entity(term)
            if required is None or required not in neighbors:
                return _Batch.empty(nslots)
            meter.charge(self.cost.binding_ns, times=nrows,
                         category="explore")
            return batch
        col = batch.cols[slot]
        if col is not None:  # already bound: membership filter
            nset = set(neighbors)
            sel = [i for i, vid in enumerate(col) if vid in nset]
            if not sel:
                return _Batch.empty(nslots)
            meter.charge(self.cost.binding_ns, times=len(sel),
                         category="explore")
            return batch.select(sel)
        k = len(neighbors)
        if not k:
            return _Batch.empty(nslots)
        reps = range(k)
        out_cols: List[Optional[List[int]]] = []
        for index, column in enumerate(batch.cols):
            if index == slot:
                out_cols.append(list(neighbors) if nrows == 1
                                else neighbors * nrows)
            elif column is None:
                out_cols.append(None)
            else:
                out_cols.append([vid for vid in column for _ in reps])
        meter.charge(self.cost.binding_ns, times=nrows * k,
                     category="explore")
        distinct = batch.distinct and len(set(neighbors)) == k
        return _Batch(nrows * k, out_cols, distinct=distinct)

    def _expand_bound_batch(self, batch: _Batch, bound_slot: int,
                            other_slot: Optional[int], other_term: str,
                            eid: int, direction: int, access: StoreAccess,
                            meter: LatencyMeter) -> _Batch:
        """Columnar :meth:`_expand_bound`: neighbour expansion of a bound
        column, with key probes deduplicated per batch.

        Neighbour lists are fetched once per distinct start vertex in
        first-occurrence row order — exactly the row path's per-expansion
        cache — so even order-sensitive (fractional) remote-read charges
        accumulate identically.
        """
        nslots = len(batch.cols)
        starts = batch.cols[bound_slot]
        if starts is None:
            # Unbound everywhere (unmatched OPTIONAL shape): no row joins.
            return _Batch.empty(nslots)
        other_const: Optional[int] = None
        if other_slot is None:
            other_const = access.resolve_entity(other_term)
            if other_const is None:
                return _Batch.empty(nslots)
        neighbors_many = getattr(access, "neighbors_many", None)
        if neighbors_many is not None:
            # Batch-shaped access: the store deduplicates the probes in
            # first-occurrence order itself (same charges, one call).
            # Per-row lists are materialized lazily — the membership
            # filter below only needs the per-distinct-start dict.
            fetched = neighbors_many(starts, eid, direction, meter)
            neighbor_lists = None
        else:
            fetched: Dict[int, List[int]] = {}
            fetched_get = fetched.get
            neighbors_of = access.neighbors
            neighbor_lists: List[List[int]] = []
            append_list = neighbor_lists.append
            for start in starts:
                neighbors = fetched_get(start)
                if neighbors is None:
                    neighbors = neighbors_of(start, eid, direction, meter)
                    fetched[start] = neighbors
                append_list(neighbors)
        other_col = batch.cols[other_slot] if other_slot is not None else None
        if other_const is not None or other_col is not None:
            # Membership filter against per-distinct-start neighbour sets
            # (charge-free bookkeeping, as on the row path); a columnar
            # access serves memoized per-column sets, and the row
            # selection itself runs entirely in C via compress/contains.
            sets_hook = getattr(access, "neighbor_sets", None)
            sets = sets_hook(fetched, eid, direction) \
                if sets_hook is not None else None
            if sets is None:
                sets = {start: set(lst) for start, lst in fetched.items()}
            if other_const is not None:
                wanted = other_const
                passing = {start for start in fetched
                           if wanted in sets[start]}
                sel = list(compress(count(),
                                    map(passing.__contains__, starts)))
            else:
                sel = list(compress(count(),
                                    map(contains,
                                        map(sets.__getitem__, starts),
                                        other_col)))
            if not sel:
                return _Batch.empty(nslots)
            meter.charge(self.cost.binding_ns, times=len(sel),
                         category="explore")
            return batch.select(sel)
        # Extend: each row fans out to its start's neighbour list.  The
        # fan-out is pure bookkeeping (charges are aggregated below), so
        # it runs entirely in C: counts/concat via map+chain, and bound
        # columns repeated with per-row itertools.repeat iterators.
        if neighbor_lists is None:
            neighbor_lists = list(map(fetched.__getitem__, starts))
        counts = list(map(len, neighbor_lists))
        total = sum(counts)
        if not total:
            return _Batch.empty(nslots)
        all_one = counts.count(1) == len(counts)
        new_other = list(chain.from_iterable(neighbor_lists))
        out_cols: List[Optional[List[int]]] = []
        for index, column in enumerate(batch.cols):
            if index == other_slot:
                out_cols.append(new_other)
            elif column is None or all_one:
                out_cols.append(column)
            else:
                out_cols.append(list(chain.from_iterable(
                    map(repeat, column, counts))))
        meter.charge(self.cost.binding_ns, times=total, category="explore")
        # Distinct rows extended with duplicate-free lists stay distinct;
        # each distinct probe's list is verified once (charge-free).  A
        # columnar access memoizes the verdict per cached column, so the
        # check survives across window closes.
        distinct = False
        if batch.distinct:
            hook = getattr(access, "distinct_neighbors", None)
            verdict = hook(fetched, eid, direction) \
                if hook is not None else None
            if verdict is None:
                verdict = all(len(set(lst)) == len(lst)
                              for lst in fetched.values())
            distinct = verdict
        return _Batch(total, out_cols, distinct=distinct)

    def _expand_index_batch(self, batch: _Batch, cstep: _CompiledStep,
                            eid: int, access: StoreAccess,
                            meter: LatencyMeter,
                            index_owner: Optional[int] = None) -> _Batch:
        """Columnar :meth:`_expand_index` for the standard shape (single
        seed row, subject variable unbound); anything else round-trips
        through the row kernel.

        The interleaved per-subject charge order (neighbour fetch, then
        that subject's binding charge) is preserved verbatim.  With
        ``index_owner``, only start vertices owned by that node are
        enumerated (fork-join/migrate branches partition the start set).
        """
        subj_slot = cstep.subj_slot
        obj_slot = cstep.obj_slot
        nslots = len(batch.cols)
        if batch.nrows != 1 or subj_slot is None \
                or batch.cols[subj_slot] is not None \
                or (obj_slot is not None and obj_slot != subj_slot
                    and batch.cols[obj_slot] is not None):
            rows = self._expand_index(batch.to_rows(), cstep, eid, access,
                                      meter, index_owner)
            return _Batch.from_rows(rows, nslots)
        if index_owner is not None:
            local_fn = getattr(access, "index_vertices_local", None)
            if local_fn is not None:
                subjects = local_fn(eid, DIR_OUT, index_owner, meter)
            else:
                subjects = [vid
                            for vid in access.index_vertices(eid, DIR_OUT,
                                                             meter)
                            if self.cluster.owner_of(vid) == index_owner]
        else:
            subjects = access.index_vertices(eid, DIR_OUT, meter)
        required = access.resolve_entity(cstep.object) \
            if obj_slot is None else None
        binding_ns = self.cost.binding_ns
        charge = meter.charge
        # Distinct subjects each contribute rows no other subject can
        # (the subject lands in a column), so the output is distinct iff
        # the subject list and every fetched list are duplicate-free.
        distinct = batch.distinct and len(set(subjects)) == len(subjects)
        subj_col: List[int] = []
        obj_col: List[int] = []
        # When every charge the access can emit is an integer (see
        # ``charges_commute``), fetch-vs-binding charge order is
        # irrelevant — integer sums are exact — so all neighbour lists
        # can be fetched in one aggregated call up front.  Otherwise the
        # interleaved per-subject order is preserved verbatim.
        fetched = None
        if getattr(access, "charges_commute", False):
            neighbors_many = getattr(access, "neighbors_many", None)
            if neighbors_many is not None:
                fetched = neighbors_many(subjects, eid, DIR_OUT, meter)
        if obj_slot is None or obj_slot == subj_slot:
            # Object is a constant (or the subject variable itself):
            # each subject survives iff the object matches its list.
            if fetched is not None:
                if obj_slot == subj_slot:
                    subj_col = [svid for svid in subjects
                                if svid in fetched[svid]]
                elif required is not None:
                    subj_col = [svid for svid in subjects
                                if required in fetched[svid]]
                if subj_col:
                    charge(binding_ns, times=len(subj_col),
                           category="explore")
            else:
                append_subj = subj_col.append
                fetch = access.neighbors
                for svid in subjects:
                    neighbors = fetch(svid, eid, DIR_OUT, meter)
                    wanted = svid if obj_slot == subj_slot else required
                    if wanted is not None and wanted in neighbors:
                        append_subj(svid)
                        charge(binding_ns, category="explore")
            obj_col = subj_col
        elif fetched is not None:
            lists = list(map(fetched.__getitem__, subjects))
            counts = list(map(len, lists))
            total = sum(counts)
            if total:
                subj_col = list(chain.from_iterable(
                    map(repeat, subjects, counts)))
                obj_col = list(chain.from_iterable(lists))
                charge(binding_ns, times=total, category="explore")
                if distinct:
                    hook = getattr(access, "distinct_neighbors", None)
                    verdict = hook(fetched, eid, DIR_OUT) \
                        if hook is not None else None
                    if verdict is None:
                        verdict = all(len(set(lst)) == len(lst)
                                      for lst in lists)
                    distinct = verdict
        else:
            extend_subj = subj_col.extend
            extend_obj = obj_col.extend
            fetch = access.neighbors
            for svid in subjects:
                neighbors = fetch(svid, eid, DIR_OUT, meter)
                k = len(neighbors)
                if k:
                    extend_subj([svid] * k)
                    extend_obj(neighbors)
                    charge(binding_ns, times=k, category="explore")
                    if distinct and len(set(neighbors)) != k:
                        distinct = False
        nrows = len(subj_col)
        if not nrows:
            return _Batch.empty(nslots)
        out_cols: List[Optional[List[int]]] = []
        for index, column in enumerate(batch.cols):
            if index == subj_slot:
                out_cols.append(subj_col)
            elif index == obj_slot:
                out_cols.append(obj_col)
            elif column is None:
                out_cols.append(None)
            else:  # a slot bound before the index start: repeat its value
                out_cols.append(column * nrows)
        return _Batch(nrows, out_cols, distinct=distinct)

    def _project_batch(self, plan: ExecutionPlan, compiled: _CompiledPlan,
                       batch: _Batch,
                       meter: LatencyMeter) -> ExecutionResult:
        """Columnar :meth:`_project`: zip projected columns into tuples."""
        query = plan.query
        if query.is_ask:
            return ExecutionResult(variables=[],
                                   rows=[()] if batch.nrows else [])
        if query.aggregates:
            return self._project(plan, compiled, batch.to_rows(), meter)
        result = ExecutionResult(
            variables=[var for var, _ in compiled.project_slots])
        nrows = batch.nrows
        proj_cols: List[List[int]] = []
        proj_slots = set()
        for _, slot in compiled.project_slots:
            column = batch.cols[slot] if slot is not None else None
            proj_slots.add(slot)
            proj_cols.append(column if column is not None else [-1] * nrows)
        # The dedup is skippable when the rows are provably distinct and
        # every bound slot is projected: projecting a superset of the
        # bound slots of distinct rows cannot create duplicates (unbound
        # slots are the constant -1 in every row).
        bound_slots = {index for index, column in enumerate(batch.cols)
                       if column is not None}
        no_dupes = batch.distinct and bound_slots <= proj_slots \
            and (bound_slots or nrows <= 1)
        if len(proj_cols) == 1:
            # First-occurrence dedup in C: dict preserves insertion order,
            # exactly the seen-set loop of the row kernel.  Single column:
            # dedup the ints directly, tuple-wrap only the survivors.
            if no_dupes:
                out = [(vid,) for vid in proj_cols[0]]
            else:
                out = [(vid,) for vid in dict.fromkeys(proj_cols[0])]
        elif proj_cols:
            out = list(zip(*proj_cols)) if no_dupes \
                else list(dict.fromkeys(zip(*proj_cols)))
        elif nrows:
            out = [()]
        else:
            out = []
        meter.charge(self.cost.binding_ns, times=len(out),
                     category="project")
        result.rows = _slice(out, query)
        return result

    # -- core exploration -----------------------------------------------------
    def _run_steps(self, compiled: _CompiledPlan,
                   access_for: AccessResolver, meter: LatencyMeter,
                   index_owner: Optional[int] = None) -> List[SlotRow]:
        """Run all steps on one node.  ``index_owner`` restricts INDEX_START
        enumeration to vertices owned by that node (fork-join branches)."""
        rows: List[SlotRow] = [[None] * compiled.nslots]
        for index, cstep in enumerate(compiled.steps):
            owner = index_owner if cstep.kind == INDEX_START else None
            access = access_for(cstep.pattern)
            rows = self._expand(cstep, rows, access, meter,
                                index_owner=owner)
            if compiled.filters_at is not None:
                rows = self._apply_step_filters(
                    compiled, rows, compiled.filters_at[index], access,
                    meter)
            if not rows:
                break
        return rows

    def _explore_rows(self, csteps: Sequence[_CompiledStep],
                      rows: List[SlotRow], access_for: AccessResolver,
                      meter: LatencyMeter) -> List[SlotRow]:
        """Run bare compiled steps over slot rows (no filters/projection)."""
        for cstep in csteps:
            if not rows:
                break
            rows = self._expand(cstep, rows, access_for(cstep.pattern),
                                meter)
        return rows

    def _expand(self, cstep: _CompiledStep, rows: List[SlotRow],
                access: StoreAccess, meter: LatencyMeter,
                index_owner: Optional[int] = None) -> List[SlotRow]:
        eid = access.resolve_predicate(cstep.predicate)
        if eid is None:
            return []
        kind = cstep.kind
        if kind == CONST_SUBJECT:
            svid = access.resolve_entity(cstep.subject)
            if svid is None:
                return []
            neighbors = access.neighbors(svid, eid, DIR_OUT, meter)
            return self._bind_side(rows, cstep.obj_slot, cstep.object,
                                   neighbors, access, meter)
        if kind == CONST_OBJECT:
            ovid = access.resolve_entity(cstep.object)
            if ovid is None:
                return []
            neighbors = access.neighbors(ovid, eid, DIR_IN, meter)
            return self._bind_side(rows, cstep.subj_slot, cstep.subject,
                                   neighbors, access, meter)
        if kind == BOUND_SUBJECT:
            return self._expand_bound(rows, cstep.subj_slot, cstep.obj_slot,
                                      cstep.object, eid, DIR_OUT, access,
                                      meter)
        if kind == BOUND_OBJECT:
            return self._expand_bound(rows, cstep.obj_slot, cstep.subj_slot,
                                      cstep.subject, eid, DIR_IN, access,
                                      meter)
        if kind == INDEX_START:
            return self._expand_index(rows, cstep, eid, access, meter,
                                      index_owner)
        raise PlanError(f"unknown step kind: {kind}")

    def _bind_side(self, rows: List[SlotRow], slot: Optional[int],
                   term: str, neighbors: List[int], access: StoreAccess,
                   meter: LatencyMeter) -> List[SlotRow]:
        """Match or bind one side of a pattern against a neighbour list,
        shared by every input row (the other side was a constant).

        One binding charge per produced row, aggregated into a single
        call — identical totals to charging each binding separately.
        """
        if slot is None:  # the term is a constant: match, don't bind
            required = access.resolve_entity(term)
            if required is None or required not in neighbors:
                return []
            meter.charge(self.cost.binding_ns, times=len(rows),
                         category="explore")
            return list(rows)
        out: List[SlotRow] = []
        nset = None  # membership set, built on first bound-variable check
        for row in rows:
            bound = row[slot]
            if bound is not None:
                if nset is None:
                    nset = set(neighbors)
                if bound in nset:
                    out.append(row)
                continue
            for vid in neighbors:
                extended = row.copy()
                extended[slot] = vid
                out.append(extended)
        if out:
            meter.charge(self.cost.binding_ns, times=len(out),
                         category="explore")
        return out

    def _expand_bound(self, rows: List[SlotRow], bound_slot: int,
                      other_slot: Optional[int], other_term: str,
                      eid: int, direction: int, access: StoreAccess,
                      meter: LatencyMeter) -> List[SlotRow]:
        """Expand rows through neighbour lookups of an already-bound variable."""
        out: List[SlotRow] = []
        fetched: Dict[int, List[int]] = {}
        #: Membership sets, built lazily per start vertex — extend-only
        #: expansions never pay for them.
        fetched_sets: Dict[int, set] = {}
        other_const: Optional[int] = None
        if other_slot is None:
            other_const = access.resolve_entity(other_term)
            if other_const is None:
                return []
        for row in rows:
            start = row[bound_slot]
            if start is None:
                # The variable is unbound in this row (unmatched OPTIONAL):
                # the pattern cannot join it.
                continue
            neighbors = fetched.get(start)
            if neighbors is None:
                neighbors = access.neighbors(start, eid, direction, meter)
                fetched[start] = neighbors
            if other_const is not None:
                nset = fetched_sets.get(start)
                if nset is None:
                    nset = fetched_sets[start] = set(neighbors)
                if other_const in nset:
                    out.append(row)
                continue
            bound_other = row[other_slot]
            if bound_other is not None:
                nset = fetched_sets.get(start)
                if nset is None:
                    nset = fetched_sets[start] = set(neighbors)
                if bound_other in nset:
                    out.append(row)
                continue
            copy = row.copy
            append = out.append
            for vid in neighbors:
                extended = copy()
                extended[other_slot] = vid
                append(extended)
        if out:
            meter.charge(self.cost.binding_ns, times=len(out),
                         category="explore")
        return out

    def _expand_index(self, rows: List[SlotRow], cstep: _CompiledStep,
                      eid: int, access: StoreAccess, meter: LatencyMeter,
                      index_owner: Optional[int] = None) -> List[SlotRow]:
        """Enumerate subjects from the predicate index, then bind objects.

        With ``index_owner``, only start vertices owned by that node are
        expanded — fork-join/migrate branches partition the start set.
        The per-(row, subject) neighbour lookup is preserved: its charges
        are part of the calibrated exploration cost.
        """
        if index_owner is not None:
            local_fn = getattr(access, "index_vertices_local", None)
            if local_fn is not None:
                subjects = local_fn(eid, DIR_OUT, index_owner, meter)
            else:
                subjects = [vid
                            for vid in access.index_vertices(eid, DIR_OUT,
                                                             meter)
                            if self.cluster.owner_of(vid) == index_owner]
        else:
            subjects = access.index_vertices(eid, DIR_OUT, meter)
        subj_slot = cstep.subj_slot
        resolved = access.resolve_entity(cstep.subject) \
            if subj_slot is None else None
        out: List[SlotRow] = []
        for row in rows:
            for svid in subjects:
                if subj_slot is not None:
                    bound = row[subj_slot]
                    if bound is not None and bound != svid:
                        continue
                    seed = row.copy()
                    seed[subj_slot] = svid
                else:
                    if resolved != svid:
                        continue
                    seed = row.copy()
                neighbors = access.neighbors(svid, eid, DIR_OUT, meter)
                out.extend(self._bind_side([seed], cstep.obj_slot,
                                           cstep.object, neighbors,
                                           access, meter))
        return out

    # -- projection ------------------------------------------------------------
    def _project(self, plan: ExecutionPlan, compiled: _CompiledPlan,
                 rows: List[SlotRow],
                 meter: LatencyMeter) -> ExecutionResult:
        query = plan.query
        if query.is_ask:
            return ExecutionResult(variables=[],
                                   rows=[()] if rows else [])
        if query.aggregates:
            if self.strings is None:
                raise PlanError(
                    "aggregates need a string server; construct the "
                    "explorer with GraphExplorer(cluster, strings)")
            from repro.sparql.evaluate import aggregate_rows
            views = [_RowView(compiled.slots, row) for row in rows]
            out = aggregate_rows(views, query, self.strings.entity_name,
                                 meter, self.cost)
            return ExecutionResult(variables=query.output_columns(),
                                   rows=_slice(out, query))
        result = ExecutionResult(
            variables=[var for var, _ in compiled.project_slots])
        seen = set()
        out = result.rows
        getter = compiled.project_getter
        if getter is not None:
            add = seen.add
            append = out.append
            for row in rows:
                projected = getter(row)
                if projected not in seen:
                    add(projected)
                    append(projected)
        else:
            slots = [slot for _, slot in compiled.project_slots]
            for row in rows:
                projected = tuple(
                    -1 if slot is None or row[slot] is None else row[slot]
                    for slot in slots)
                if projected not in seen:
                    seen.add(projected)
                    out.append(projected)
        meter.charge(self.cost.binding_ns, times=len(result.rows),
                     category="project")
        result.rows = _slice(result.rows, query)
        return result


def _slice(rows: List[Tuple[int, ...]], query) -> List[Tuple[int, ...]]:
    """Apply the query's OFFSET/LIMIT to the solution sequence."""
    if query.offset:
        rows = rows[query.offset:]
    if query.limit is not None:
        rows = rows[:query.limit]
    return rows
