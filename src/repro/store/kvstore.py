"""One shard of the snapshot-versioned key/value graph store.

Layout follows Wukong (Fig. 6): the key combines vertex ID, predicate ID
and direction (``[vid|eid|d]``); the value is the list of neighbouring
vertex IDs.  Wukong+S extends the value lists with *snapshot numbers*
(§4.3): every entry carries the SN of the stream batch that inserted it
(the initially loaded data carries SN 0), entries are appended in
non-decreasing SN order, and a reader at stable SN ``n`` sees exactly the
prefix of entries with SN <= ``n`` — snapshot isolation without locks.

Bounded scalarization is implemented by :meth:`ShardStore.compact`, which
relabels entries at or below a bound into the base snapshot so each key
retains only a bounded number of distinct SN segments (the paper keeps two:
one being read, one being inserted).

*Value spans* — ``(offset, length)`` windows into a key's entry list — are
returned by inserts so the stream index (§4.2) can later read exactly the
entries contributed by one stream batch, skipping the scan of the rest of
the value.  Compaction never reorders entries, so spans stay valid until
the index slice that holds them is garbage-collected.

Index vertices (``[0|p|d]``) are kept in a separate map, deduplicated, and
are *not* partitioned by the reserved vid 0: each shard indexes its own
local vertices, which is how Wukong distributes index vertices.

Two wall-clock-only additions serve the one-shot fast path (they never
change simulated charges):

*Predicate cardinality statistics* — every insert bumps a per
``(eid, d)`` entry counter; together with the index-vertex member counts
this yields per-predicate entry/key cardinalities the cost-aware planner
uses to order triple patterns by estimated selectivity.

*Adjacency-segment cache* — a bounded map from store key to its most
recently computed ``(max_sn, visible-prefix, total-length)`` so repeated
probes of hot ``(vertex, predicate)`` keys skip the hash lookup, bisect
and slice.  Readers still charge exactly the probe/scan (and remote-read)
costs of an uncached lookup; any insert to a key invalidates its cached
segment, and compaction drops the whole cache.
"""

from __future__ import annotations

from bisect import bisect_right
from heapq import heappop, heappush
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import StoreError
from repro.rdf.ids import DIR_IN, DIR_OUT, Key
from repro.sim.cost import ChargeSet, CostModel, LatencyMeter, MemoryModel

#: Initially loaded (bulk) data carries the base snapshot number.
BASE_SN = 0

#: The low bits of a packed key that identify ``(eid, d)`` — the
#: per-predicate statistics bucket of an adjacency key.
_PRED_BITS = 18
_PRED_MASK = (1 << _PRED_BITS) - 1

#: Capacity of each per-(predicate, direction) top-k degree sketch.
TOPK_CAPACITY = 8

#: Default upper bound on cached adjacency segments per shard.
ADJACENCY_CACHE_CAPACITY = 1 << 16

#: Supported adjacency-cache eviction policies.
ADJACENCY_POLICIES = ("fifo", "lru")


@dataclass(frozen=True, slots=True)
class ValueSpan:
    """A contiguous window of one key's value list: ``[offset, offset+length)``."""

    key: Key
    offset: int
    length: int


class _ValueList:
    """The versioned neighbour list of one key.

    ``vids`` and ``sns`` are parallel arrays; ``sns`` is non-decreasing.
    """

    __slots__ = ("vids", "sns")

    def __init__(self) -> None:
        self.vids: List[int] = []
        self.sns: List[int] = []

    def append(self, vid: int, sn: int) -> int:
        """Append one entry; returns its offset."""
        if self.sns and sn < self.sns[-1]:
            raise StoreError(
                f"snapshot numbers must be appended in order: "
                f"{sn} after {self.sns[-1]}")
        self.vids.append(vid)
        self.sns.append(sn)
        return len(self.vids) - 1

    def visible(self, max_sn: Optional[int]) -> List[int]:
        """Entries visible at snapshot ``max_sn`` (None = everything)."""
        if max_sn is None:
            return self.vids
        cut = bisect_right(self.sns, max_sn)
        return self.vids[:cut]

    def distinct_sns(self) -> int:
        """Number of distinct snapshot segments (memory-accounting input)."""
        count = 0
        previous = None
        for sn in self.sns:
            if sn != previous:
                count += 1
                previous = sn
        return count

    def compact(self, bound_sn: int) -> None:
        """Relabel entries with SN <= ``bound_sn`` into the base snapshot."""
        cut = bisect_right(self.sns, bound_sn)
        if cut and self.sns[cut - 1] != BASE_SN:
            self.sns[:cut] = [BASE_SN] * cut


class _TopKSketch:
    """Space-saving heavy-hitter sketch of per-vertex degrees.

    Tracks (approximately) the ``capacity`` highest-degree vertices of one
    ``(predicate, direction)`` bucket: a tracked vertex's count is exact
    once it stays resident; an entering vertex inherits the evicted
    minimum plus one (the standard space-saving overestimate).  Fully
    deterministic — ties pick the first-inserted key, and insertion order
    is the deterministic store insertion order — so statistics-driven
    plan ordering stays reproducible.  Wall-clock-only planner input;
    maintaining it charges nothing.
    """

    __slots__ = ("capacity", "counts", "_floor", "_cohort", "_cohort_pos")

    def __init__(self, capacity: int = TOPK_CAPACITY):
        self.capacity = capacity
        self.counts: Dict[int, int] = {}
        #: Lazily maintained eviction cohort: the keys whose count equals
        #: ``_floor``, in dict (= first-insertion) order, captured at the
        #: last rescan.  Counts only ever grow and entrants start at
        #: ``_floor + 1``, so until the cohort is exhausted the dict-order
        #: first key still holding ``_floor`` is exactly
        #: ``min(counts, key=counts.__getitem__)``; bumped members are
        #: skipped on pop.  Rescans amortize across the whole cohort,
        #: replacing the O(capacity) ``min`` per eviction.
        self._floor = 0
        self._cohort: List[int] = []
        self._cohort_pos = 0

    def bump(self, vid: int) -> None:
        counts = self.counts
        count = counts.get(vid)
        if count is not None:
            counts[vid] = count + 1
            return
        if len(counts) < self.capacity:
            counts[vid] = 1
            return
        cohort = self._cohort
        pos = self._cohort_pos
        floor = self._floor
        while True:
            if pos >= len(cohort):
                floor = self._floor = min(counts.values())
                cohort = self._cohort = \
                    [key for key, held in counts.items() if held == floor]
                pos = 0
            victim = cohort[pos]
            pos += 1
            if counts.get(victim) == floor:
                break
        self._cohort_pos = pos
        del counts[victim]
        counts[vid] = floor + 1

    def estimate(self, vid: int) -> Optional[int]:
        """The tracked degree of ``vid``, or None when it is not a
        current heavy hitter."""
        return self.counts.get(vid)


class ShardStore:
    """The store partition held by one simulated node."""

    def __init__(self, cost: Optional[CostModel] = None,
                 adjacency_capacity: int = ADJACENCY_CACHE_CAPACITY,
                 adjacency_policy: str = "fifo",
                 adjacency_weighted: bool = False):
        self.cost = cost if cost is not None else CostModel()
        if adjacency_policy not in ADJACENCY_POLICIES:
            raise StoreError(
                f"unknown adjacency cache policy: {adjacency_policy!r} "
                f"(want one of {ADJACENCY_POLICIES})")
        self.adjacency_capacity = adjacency_capacity
        self.adjacency_policy = adjacency_policy
        #: Entries-weighted (size-aware) eviction: ``adjacency_capacity``
        #: becomes a budget of cached neighbour entries — each segment
        #: weighs ``1 + len(visible)`` — so one hot high-degree vertex
        #: displaces proportionally many cheap segments instead of one.
        self.adjacency_weighted = adjacency_weighted
        #: Total weight of the cached segments (maintained either way).
        self._adjacency_weight = 0
        #: Wall-clock-only cache effectiveness counters (never charged).
        self.adjacency_hits = 0
        self.adjacency_misses = 0
        self.adjacency_evictions = 0
        self._values: Dict[Key, _ValueList] = {}
        self._index: Dict[Tuple[int, int], List[int]] = {}
        self._index_members: Dict[Tuple[int, int], Set[int]] = {}
        #: Keys holding at least one non-base SN (SNs are non-decreasing,
        #: so this is exactly ``sns[-1] != BASE_SN``).  Compaction — a
        #: charge-free bookkeeping pass — only needs to visit these.
        self._versioned: Set[Key] = set()
        #: Min-heap of ``(oldest non-base SN, key)`` with exactly one live
        #: entry per versioned key, so compaction pops only the keys whose
        #: oldest versioned entry is actually due instead of scanning the
        #: whole versioned set every cycle.
        self._versioned_heap: List[Tuple[int, Key]] = []
        #: Entries inserted per ``(eid, d)`` bucket (packed low key bits),
        #: maintained at load/injection time for the cost-aware planner.
        self._pred_entries: Dict[int, int] = {}
        #: Per-bucket top-k degree sketches (hot-constant planner input).
        self._degree_sketches: Dict[int, _TopKSketch] = {}
        #: key -> (max_sn, visible prefix, total value length); bounded.
        self._adjacency: Dict[Key, Tuple[Optional[int], List[int], int]] = {}

    # -- writes ---------------------------------------------------------
    def insert(self, key: Key, vid: int, sn: int = BASE_SN,
               meter: Optional[LatencyMeter] = None) -> ValueSpan:
        """Append ``vid`` to ``key``'s value list under snapshot ``sn``.

        Returns the single-entry span of the appended value, which callers
        may coalesce into batch spans for the stream index.
        """
        values = self._values.get(key)
        if values is None:
            values = _ValueList()
            self._values[key] = values
            if meter is not None:
                meter.charge(self.cost.create_key_ns, category="insert")
        offset = values.append(vid, sn)
        if sn != BASE_SN:
            versioned = self._versioned
            if key not in versioned:
                versioned.add(key)
                heappush(self._versioned_heap, (sn, key))
        bucket = key & _PRED_MASK
        self._pred_entries[bucket] = self._pred_entries.get(bucket, 0) + 1
        sketch = self._degree_sketches.get(bucket)
        if sketch is None:
            sketch = self._degree_sketches[bucket] = _TopKSketch()
        sketch.bump(key >> _PRED_BITS)
        if self._adjacency:
            dropped = self._adjacency.pop(key, None)
            if dropped is not None:
                self._adjacency_weight -= 1 + len(dropped[1])
        if meter is not None:
            meter.charge(self.cost.insert_entry_ns, category="insert")
        return ValueSpan(key, offset, 1)

    def note_insert(self, key: Key) -> None:
        """Per-entry planner statistics of one insert (bucket entry count
        and degree-sketch bump) without the value append.

        The bulk injection path calls this in tuple-arrival order — the
        sketch's eviction ties are order-sensitive, so bumps may not be
        grouped per key — and appends the values per key afterwards via
        :meth:`insert_column`.  ``insert`` == ``note_insert`` +
        a one-entry ``insert_column``, charges included.
        """
        bucket = key & _PRED_MASK
        self._pred_entries[bucket] = self._pred_entries.get(bucket, 0) + 1
        sketch = self._degree_sketches.get(bucket)
        if sketch is None:
            sketch = self._degree_sketches[bucket] = _TopKSketch()
        sketch.bump(key >> _PRED_BITS)

    def insert_column(self, key: Key, vids: List[int], sn: int = BASE_SN,
                      meter: Optional[LatencyMeter] = None) -> ValueSpan:
        """Bulk-append one key's batch contribution under one snapshot.

        Equivalent to ``len(vids)`` consecutive :meth:`insert` calls minus
        the per-entry statistics (see :meth:`note_insert`): same value
        list, same charges (``create_key_ns`` on a fresh key plus one
        ``insert_entry_ns`` per entry), one coalesced span.
        """
        values = self._values.get(key)
        if values is None:
            values = _ValueList()
            self._values[key] = values
            if meter is not None:
                meter.charge(self.cost.create_key_ns, category="insert")
        sns = values.sns
        if sns and sn < sns[-1]:
            raise StoreError(
                f"snapshot numbers must be appended in order: "
                f"{sn} after {sns[-1]}")
        offset = len(values.vids)
        count = len(vids)
        values.vids += vids
        sns += [sn] * count
        if sn != BASE_SN:
            versioned = self._versioned
            if key not in versioned:
                versioned.add(key)
                heappush(self._versioned_heap, (sn, key))
        if self._adjacency:
            dropped = self._adjacency.pop(key, None)
            if dropped is not None:
                self._adjacency_weight -= 1 + len(dropped[1])
        if meter is not None:
            meter.charge(self.cost.insert_entry_ns, times=count,
                         category="insert")
        return ValueSpan(key, offset, count)

    def insert_groups(self, groups: Dict[Key, List[int]], sn: int = BASE_SN,
                      meter: Optional[LatencyMeter] = None) -> List[ValueSpan]:
        """Bulk :meth:`insert_column` + :meth:`add_index` over one batch's
        per-key value groups, in group order; returns the spans in the
        same order.

        Every charge involved is an integer in the "insert" category, so
        the per-key interleaving collapses into two aggregated calls
        (key/index creations, entry appends) with an exactly identical
        sum — the injector flushes them through its ChargeSet as before.
        """
        values_dict = self._values
        values_get = values_dict.get
        versioned = sn != BASE_SN
        versioned_set = self._versioned
        heap = self._versioned_heap
        adjacency = self._adjacency
        adjacency_pop = adjacency.pop if adjacency else None
        index_members = self._index_members
        index_lists = self._index
        spans: List[ValueSpan] = []
        append_span = spans.append
        created_keys = 0
        index_entries = 0
        entries = 0
        for key, vids in groups.items():
            values = values_get(key)
            if values is None:
                values = _ValueList()
                values_dict[key] = values
                created_keys += 1
            sns = values.sns
            if sns and sn < sns[-1]:
                raise StoreError(
                    f"snapshot numbers must be appended in order: "
                    f"{sn} after {sns[-1]}")
            value_list = values.vids
            offset = len(value_list)
            count = len(vids)
            if count == 1:
                # Most keys receive a single value per batch: append
                # beats building the one-element [sn] list.
                value_list.append(vids[0])
                sns.append(sn)
            else:
                value_list += vids
                sns += [sn] * count
            entries += count
            if versioned and key not in versioned_set:
                versioned_set.add(key)
                heappush(heap, (sn, key))
            if adjacency_pop is not None:
                dropped = adjacency_pop(key, None)
                if dropped is not None:
                    self._adjacency_weight -= 1 + len(dropped[1])
            append_span(ValueSpan(key, offset, count))
            # Inlined add_index (key packing guarantees a valid direction).
            slot = ((key & _PRED_MASK) >> 1, key & 1)
            members = index_members.get(slot)
            if members is None:
                members = index_members[slot] = set()
                index_lists[slot] = []
            vid = key >> _PRED_BITS
            if vid not in members:
                members.add(vid)
                index_lists[slot].append(vid)
                index_entries += 1
        if meter is not None:
            if created_keys:
                meter.charge(self.cost.create_key_ns, times=created_keys,
                             category="insert")
            if entries or index_entries:
                meter.charge(self.cost.insert_entry_ns,
                             times=entries + index_entries,
                             category="insert")
        return spans

    def add_index(self, eid: int, d: int, vid: int,
                  meter: Optional[LatencyMeter] = None) -> bool:
        """Record that local vertex ``vid`` has a ``d``-direction ``eid`` edge.

        Index vertices are sets: duplicate registrations are ignored.
        Returns whether a new entry was added.
        """
        if d not in (DIR_IN, DIR_OUT):
            raise StoreError(f"bad direction: {d}")
        slot = (eid, d)
        members = self._index_members.setdefault(slot, set())
        if vid in members:
            return False
        members.add(vid)
        self._index.setdefault(slot, []).append(vid)
        if meter is not None:
            meter.charge(self.cost.insert_entry_ns, category="insert")
        return True

    def compact(self, bound_sn: int) -> int:
        """Bounded scalarization: fold SNs <= ``bound_sn`` into the base.

        Returns how many keys were touched.  Only keys holding non-base
        SNs can change (all-base lists are fixpoints), and among those
        only keys whose *oldest* non-base SN is already due — everything
        else would bisect to an all-base (or empty) prefix and no-op, so
        the due-key heap skips them outright.  A key's distinct-segment
        count changes exactly when the relabelled prefix held more than
        one distinct SN — with non-decreasing SNs that is an O(1)
        first-vs-last check, preserving the original return value.
        """
        # Cached adjacency segments survive compaction: relabelling never
        # moves values, and ``cached_adjacency`` validates each hit
        # against the live SN list (see its docstring), so stale
        # visibility can never be served.
        touched = 0
        heap = self._versioned_heap
        versioned = self._versioned
        values = self._values
        while heap and heap[0][0] <= bound_sn:
            _, key = heappop(heap)
            sns = values[key].sns
            # The popped SN is still present in ``sns`` (relabelling only
            # happens on pop), so the bisected prefix is never empty.
            cut = bisect_right(sns, bound_sn)
            if sns[0] != sns[cut - 1]:
                touched += 1
            if sns[cut - 1] != BASE_SN:
                sns[:cut] = [BASE_SN] * cut
            if cut == len(sns):
                versioned.discard(key)
            else:
                heappush(heap, (sns[cut], key))
        return touched

    # -- adjacency-segment cache ---------------------------------------
    def cached_adjacency(self, key: Key, max_sn: Optional[int]
                         ) -> Optional[Tuple[List[int], int]]:
        """The cached ``(visible prefix, total length)`` of ``key`` at
        ``max_sn``, or None on a miss.  Charge-free: callers must charge
        exactly what an uncached lookup would.

        A cached segment serves *any* bound that bisects to the same
        visible prefix, not just the bound it was recorded under: inserts
        invalidate the key, so while an entry exists the key's value list
        is unchanged since caching and ``entry prefix == vids[:len(entry
        prefix)]`` holds — the entry is correct at ``max_sn`` exactly when
        ``max_sn``'s cut equals that length.  (This also makes entries
        immune to compaction: relabelling moves SNs *down*, never the
        values, and the cut comparison reads the live SN list.)
        """
        cache = self._adjacency
        entry = cache.get(key)
        if entry is not None:
            if entry[0] != max_sn:
                values = self._values.get(key)
                sns: List[int] = values.sns if values is not None else []
                cut = len(sns) if max_sn is None \
                    else bisect_right(sns, max_sn)
                if cut != len(entry[1]):
                    self.adjacency_misses += 1
                    return None
            self.adjacency_hits += 1
            if self.adjacency_policy == "lru":
                # Move-to-end: dicts preserve insertion order, so the
                # front of the dict is always the eviction victim.
                cache[key] = cache.pop(key)
            return entry[1], entry[2]
        self.adjacency_misses += 1
        return None

    def cache_adjacency(self, key: Key, max_sn: Optional[int],
                        visible: List[int]) -> None:
        """Remember ``key``'s visible prefix at ``max_sn`` (bounded).

        Eviction victim is the front of the insertion-ordered dict:
        oldest insert under ``fifo``, least recently used under ``lru``
        (hits re-insert at the back).  With ``adjacency_weighted``, the
        capacity is an entries budget: victims are evicted from the front
        until the new segment (weight ``1 + len(visible)``) fits — a
        segment heavier than the whole budget still caches alone, after
        emptying the cache.
        """
        cache = self._adjacency
        weight = 1 + len(visible)
        if key in cache:
            old = cache.pop(key)
            self._adjacency_weight -= 1 + len(old[1])
        if self.adjacency_weighted:
            budget = self.adjacency_capacity
            while cache and self._adjacency_weight + weight > budget:
                victim = next(iter(cache))
                dropped = cache.pop(victim)
                self._adjacency_weight -= 1 + len(dropped[1])
                self.adjacency_evictions += 1
        elif len(cache) >= self.adjacency_capacity:
            victim = next(iter(cache))
            dropped = cache.pop(victim)
            self._adjacency_weight -= 1 + len(dropped[1])
            self.adjacency_evictions += 1
        values = self._values.get(key)
        total = len(values.vids) if values is not None else 0
        cache[key] = (max_sn, visible, total)
        self._adjacency_weight += weight

    def set_adjacency_capacity(self, capacity: int) -> None:
        """Resize the cache budget at runtime (adaptive sizing; see
        ``repro.core.replan.AdjacencyBudget``).

        Shrinking below the current occupancy evicts from the front of
        the insertion-ordered dict — the same victim order the steady
        state uses — counting each drop as an eviction.  Charge-free
        either way: capacity only bounds a wall-clock cache.
        """
        if capacity < 1:
            raise StoreError(f"adjacency capacity must be >= 1: {capacity}")
        self.adjacency_capacity = capacity
        cache = self._adjacency
        if self.adjacency_weighted:
            # Like cache_adjacency, a single segment heavier than the
            # whole budget may stay cached alone.
            while len(cache) > 1 and self._adjacency_weight > capacity:
                dropped = cache.pop(next(iter(cache)))
                self._adjacency_weight -= 1 + len(dropped[1])
                self.adjacency_evictions += 1
        else:
            while len(cache) > capacity:
                dropped = cache.pop(next(iter(cache)))
                self._adjacency_weight -= 1 + len(dropped[1])
                self.adjacency_evictions += 1

    # -- predicate cardinality statistics --------------------------------
    def predicate_entries(self, eid: int, d: int) -> int:
        """Total adjacency entries inserted under ``(eid, d)`` keys."""
        return self._pred_entries.get((eid << 1) | d, 0)

    def predicate_keys(self, eid: int, d: int) -> int:
        """Distinct local vertices holding a ``d``-direction ``eid`` edge."""
        members = self._index_members.get((eid, d))
        return len(members) if members is not None else 0

    def topk_degree(self, eid: int, d: int, vid: int) -> Optional[int]:
        """``vid``'s tracked degree under ``(eid, d)``, or None when it is
        not one of the bucket's current heavy hitters."""
        sketch = self._degree_sketches.get((eid << 1) | d)
        return None if sketch is None else sketch.estimate(vid)

    # -- reads ------------------------------------------------------------
    def lookup(self, key: Key, max_sn: Optional[int] = None,
               meter: Optional[LatencyMeter] = None,
               category: str = "store") -> List[int]:
        """All vids of ``key`` visible at ``max_sn``.

        Charges one hash probe plus a scan proportional to the visible
        prefix length.
        """
        values = self._values.get(key)
        if meter is not None:
            meter.charge(self.cost.hash_probe_ns, category=category)
        if values is None:
            return []
        visible = values.visible(max_sn)
        if meter is not None:
            meter.charge(self.cost.scan_entry_ns, times=len(visible),
                         category=category)
        return visible

    def lookup_versions(self, key: Key, max_sn: Optional[int] = None,
                        meter: Optional[LatencyMeter] = None,
                        category: str = "store"
                        ) -> Tuple[List[int], List[int]]:
        """The ``(vids, sns)`` prefix of ``key`` visible at ``max_sn``.

        The SPARQL-T quintuple read: like :meth:`lookup` but also returns
        each visible entry's insertion snapshot, so the temporal evaluator
        can bind valid-time intervals.  Charges exactly what :meth:`lookup`
        charges — one hash probe plus a scan of the visible prefix; the SN
        column rides along with the value scan, it is not a second read.
        Note compaction relabels SNs at or below the GC frontier to
        :data:`BASE_SN`, so insertion snapshots below the frontier are
        coarsened to the base (reads *above* the frontier are exact).
        """
        values = self._values.get(key)
        if meter is not None:
            meter.charge(self.cost.hash_probe_ns, category=category)
        if values is None:
            return [], []
        if max_sn is None:
            cut = len(values.vids)
        else:
            cut = bisect_right(values.sns, max_sn)
        if meter is not None:
            meter.charge(self.cost.scan_entry_ns, times=cut,
                         category=category)
        return values.vids[:cut], values.sns[:cut]

    def lookup_versions_many(self, keys: Iterable[Key],
                             max_sn: Optional[int] = None,
                             meter: Optional[LatencyMeter] = None,
                             category: str = "store"
                             ) -> List[Tuple[List[int], List[int]]]:
        """Batch :meth:`lookup_versions`: one probe per key, in key order.

        The columnar temporal kernels hand whole probe lists here instead
        of calling :meth:`lookup_versions` once per key.  Charges
        accumulate through a :class:`ChargeSet` and flush aggregated —
        hash probes and visible-prefix scans are integer-priced, so the
        flushed sum is bit-identical to charging every probe individually
        (the ``charges_commute`` discipline) while the meter overhead
        drops to one call per distinct price.
        """
        charges = ChargeSet() if meter is not None else None
        out = [self.lookup_versions(key, max_sn=max_sn, meter=charges,
                                    category=category)
               for key in keys]
        if charges is not None:
            charges.flush(meter)
        return out

    def lookup_span(self, span: ValueSpan,
                    meter: Optional[LatencyMeter] = None,
                    category: str = "store") -> List[int]:
        """Read exactly one span of a key's value list (stream-index path).

        No hash probe is charged: the span's fat pointer addresses the
        value directly (the paper's one-RDMA-read fast path).
        """
        values = self._values.get(span.key)
        if values is None:
            raise StoreError(f"span refers to unknown key: {span.key}")
        end = span.offset + span.length
        if end > len(values.vids):
            raise StoreError(
                f"span out of bounds: {span} (list length {len(values.vids)})")
        if meter is not None:
            meter.charge(self.cost.scan_entry_ns, times=span.length,
                         category=category)
        return values.vids[span.offset:end]

    def index_vertices(self, eid: int, d: int,
                       meter: Optional[LatencyMeter] = None,
                       category: str = "store") -> List[int]:
        """The local vertices registered under index ``[0|eid|d]``."""
        vertices = self._index.get((eid, d), [])
        if meter is not None:
            meter.charge(self.cost.hash_probe_ns, category=category)
            meter.charge(self.cost.scan_entry_ns, times=len(vertices),
                         category=category)
        return vertices

    # -- introspection ------------------------------------------------------
    @property
    def num_keys(self) -> int:
        return len(self._values)

    @property
    def num_entries(self) -> int:
        return sum(len(v.vids) for v in self._values.values())

    def value_bytes(self, key: Key) -> int:
        """Approximate wire size of one key's value (for network pricing)."""
        values = self._values.get(key)
        length = len(values.vids) if values is not None else 0
        return 16 + 8 * length

    def iter_keys(self) -> Iterator[Key]:
        return iter(self._values.keys())

    def memory_bytes(self, memory: Optional[MemoryModel] = None) -> int:
        """Modelled resident bytes of this shard (Table 7 / §6.7 accounting)."""
        model = memory if memory is not None else MemoryModel()
        total = 0
        for values in self._values.values():
            total += model.key_bytes
            total += model.entry_bytes * len(values.vids)
            total += model.sn_segment_bytes * values.distinct_sns()
        for vertices in self._index.values():
            total += model.key_bytes + model.entry_bytes * len(vertices)
        return total
