"""Fault tolerance walkthrough: logging, checkpoints, crash and recovery.

Demonstrates §5's fault-tolerance machinery on a live engine:

1. run the quickstart scenario with logging + periodic checkpoints;
2. crash one node (its shard and transient stores are lost);
3. recover it from the initial data + the durable log (upstream backup
   acknowledges through the latest checkpoint);
4. show that one-shot answers and continuous results are identical to the
   pre-crash state, and that processing continues;
5. finally, save the whole engine to disk and cold-start a fresh engine
   from the checkpoint file — the full-restart recovery path.

Run with:  python examples/fault_recovery.py
"""

import os
import tempfile

from repro.core.engine import EngineConfig, WukongSEngine
from repro.rdf.parser import parse_timed_tuples, parse_triples
from repro.streams.source import StreamSource
from repro.streams.stream import StreamSchema

from quickstart import LIKE_STREAM, QC, QS, TWEET_STREAM, X_LAB


def answers(engine, record):
    return sorted(tuple(engine.strings.entity_name(v) for v in row)
                  for row in record.result.rows)


def main():
    engine = WukongSEngine(
        schemas=[StreamSchema("Tweet_Stream", frozenset({"ga"})),
                 StreamSchema("Like_Stream")],
        config=EngineConfig(num_nodes=2, batch_interval_ms=1000,
                            fault_tolerance=True,
                            checkpoint_interval_ms=2000))
    engine.load_static(parse_triples(X_LAB))
    tweets = StreamSource(engine.schemas["Tweet_Stream"])
    tweets.queue_tuples(parse_timed_tuples(TWEET_STREAM), 0, 1000)
    likes = StreamSource(engine.schemas["Like_Stream"])
    likes.queue_tuples(parse_timed_tuples(LIKE_STREAM), 0, 1000)
    engine.attach_source(tweets)
    engine.attach_source(likes)
    engine.register_continuous(QC)

    engine.run_until(7_000)
    checkpoints = engine.checkpoints
    print(f"after 7s: {checkpoints.num_checkpoints} checkpoints, "
          f"mean logging delay "
          f"{checkpoints.mean_logging_delay_ms():.4f} ms/batch")

    before = answers(engine, engine.oneshot(QS, home_node=0))
    print(f"one-shot QS before crash: {before}")

    print("\ncrashing node 1 (shard + transient stores lost)...")
    engine.crash_node(1)
    assert engine.store.shards[1].num_keys == 0

    print("recovering node 1 from initial data + durable log...")
    engine.recover_node(1)
    after = answers(engine, engine.oneshot(QS, home_node=0))
    print(f"one-shot QS after recovery: {after}")
    assert after == before, "recovery must restore identical answers"

    print("\ncontinuing stream processing after recovery:")
    for record in engine.run_until(11_000):
        rows = answers(engine, record)
        if rows:
            print(f"  t={record.close_ms / 1000:.0f}s: {rows}")
    print("recovery preserved results and processing resumed  [ok]")

    # Full restart: serialize everything durable, rebuild from scratch.
    from repro.core.durability import restore_engine, save_engine

    path = os.path.join(tempfile.mkdtemp(), "wukongs.ckpt.json")
    save_engine(engine, path)
    size_kib = os.path.getsize(path) / 1024
    print(f"\nsaved durable state to {path} ({size_kib:.1f} KiB)")
    revived = restore_engine(path)
    restored = answers(revived, revived.oneshot(QS, home_node=0))
    print(f"cold-started engine answers QS: {restored}")
    assert restored == after
    print(f"registered queries restored: "
          f"{sorted(revived.continuous.queries)}  [ok]")


if __name__ == "__main__":
    main()
