"""Smart-city monitoring: CityBench streams over a city knowledge graph.

The paper's second scenario (§6.10): IoT sensors in the city of Aarhus
feed eleven RDF streams — vehicle traffic, parking availability, weather,
user locations, pollution — joined against a static graph of roads, areas
and sensors.  This example registers three urban-monitoring queries:

* C2: congestion on pairs of connected roads (route planning);
* C5: parking availability near a congested road;
* C8: the weather where a given citizen currently is.

Run with:  python examples/smart_city.py
"""

from repro.bench.citybench import CityBench, CityBenchConfig
from repro.bench.harness import build_wukongs
from repro.bench.metrics import median

DURATION_MS = 12_000


def main():
    bench = CityBench(CityBenchConfig())
    print("CityBench scenario:", len(bench.static_triples()),
          "static triples;", len(bench.schemas()), "sensor streams "
          "(rates 4-19 tuples/s, as in the paper)")

    engine = build_wukongs(bench, num_nodes=1, duration_ms=DURATION_MS,
                           batch_interval_ms=1_000)
    handles = {name: engine.register_continuous(bench.continuous_query(name))
               for name in ("C2", "C5", "C8")}
    engine.run_until(DURATION_MS)

    for name, handle in handles.items():
        latencies = [rec.latency_ms for rec in handle.executions]
        latest = handle.executions[-1] if handle.executions else None
        print(f"\n{name}: {len(latencies)} executions, "
              f"median {median(latencies):.3f} ms")
        if latest is not None and latest.result.rows:
            sample = [tuple(engine.strings.entity_name(v) for v in row)
                      for row in latest.result.rows[:3]]
            print(f"  latest window ({latest.close_ms / 1000:.0f}s): "
                  f"{len(latest.result.rows)} rows, e.g. {sample}")

    # A city operator's one-shot query over the absorbed observations.
    record = engine.oneshot(
        "SELECT ?S ?L WHERE { ?S onRoad Road0 . ?S congestion ?L }")
    rows = [tuple(engine.strings.entity_name(v) for v in row)
            for row in record.result.rows]
    print(f"\none-shot: congestion readings ever absorbed for Road0: "
          f"{len(rows)} rows ({record.latency_ms:.3f} ms)")


if __name__ == "__main__":
    main()
