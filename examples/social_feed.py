"""Social-networking workload: many concurrent queries over LSBench.

The paper's motivating scenario (§2.1): a social network where massive
numbers of users register continuous queries over the activity streams
while one-shot queries mine the accumulated knowledge base.  This example:

* generates an LSBench social graph plus its five activity streams;
* registers a mix of selective (group I) and analytic (group II)
  continuous queries for several different users;
* runs the simulated cluster and reports per-class latency statistics and
  the worker-model throughput;
* interleaves one-shot queries over the evolving store.

Run with:  python examples/social_feed.py
"""

from repro.bench.lsbench import LSBench, LSBenchConfig
from repro.bench.metrics import mean, median, percentile
from repro.bench.workload import run_mixed_workload
from repro.bench.harness import build_wukongs

DURATION_MS = 3_000


def main():
    bench = LSBench(LSBenchConfig(num_users=800))
    print("LSBench scenario:", bench.config.num_users, "users,",
          len(bench.static_triples()), "initial triples,",
          "5 activity streams")

    result = run_mixed_workload(
        bench, ["L1", "L2", "L3", "L5"], num_nodes=4,
        duration_ms=DURATION_MS, variants_per_class=3)

    print(f"\nmixed workload on 4 nodes "
          f"({result.total_workers} query workers):")
    for name, samples in sorted(result.per_class_latencies_ms.items()):
        if not samples:
            continue
        print(f"  {name}: {len(samples):3d} executions, "
              f"median {median(samples):.3f} ms, "
              f"p99 {percentile(samples, 99):.3f} ms")
    print(f"  mixture mean latency: "
          f"{result.mixture_mean_latency_ms:.3f} ms")
    print(f"  worker-model throughput: "
          f"{result.throughput_qps / 1e3:.0f}K queries/s")

    # One-shot analytics over the evolving store.
    engine = build_wukongs(bench, num_nodes=4, duration_ms=DURATION_MS)
    engine.run_until(DURATION_MS)
    print("\none-shot analytics over the evolving store:")
    for name in ("S2", "S3", "S5"):
        record = engine.oneshot(bench.oneshot_query(name))
        print(f"  {name}: {len(record.result.rows)} rows, "
              f"{record.latency_ms:.3f} ms at snapshot {record.snapshot}")

    po_index = engine.stream_index_bytes("PO")
    po_raw = engine.raw_stream_bytes("PO")
    print(f"\nstream-index overhead for PO: {po_index} bytes for "
          f"{po_raw} raw bytes ({po_index / max(1, po_raw):.1%})")


if __name__ == "__main__":
    main()
