"""Quickstart: the paper's running example (Figs. 1-2), end to end.

Loads the X-Lab social graph, attaches the Tweet and Like streams, then:

* registers the paper's continuous query QC — people and tweets such that
  ?X posted ?Z (last 10s), ?X follows ?Y, and ?Y liked ?Z (last 5s);
* runs the simulation and prints each execution's results and simulated
  latency;
* issues the one-shot query QS over the *evolving* store, showing that
  streamed timeless data (the tweet T-15) became queryable knowledge.

Run with:  python examples/quickstart.py
"""

from repro.core.engine import EngineConfig, WukongSEngine
from repro.rdf.parser import parse_timed_tuples, parse_triples
from repro.streams.source import StreamSource
from repro.streams.stream import StreamSchema

X_LAB = """
# Initially stored data (Fig. 1): members of X-Lab and older tweets.
Logan ty XMen .
Erik ty XMen .
Logan fo Erik .
Erik fo Logan .
Logan po T-13 .
Logan po T-14 .
Erik po T-12 .
T-13 ht sosp17 .
T-12 ht sosp17 .
Logan li T-12 .
Erik li T-13 .
Erik li T-14 .
"""

TWEET_STREAM = """
# <subject predicate object @ms>; 'ga' (GPS) tuples are timing data.
Logan po T-15 @2200
T-15 ga loc-31-121 @2200
T-15 ht sosp17 @2250
Erik po T-16 @5100
T-16 ga loc-41-74 @5150
Logan po T-17 @8100
T-17 ga loc-31-121 @8200
"""

LIKE_STREAM = """
Erik li T-15 @6100
Tony li T-15 @6200
Bruce li T-15 @6300
Clint li T-15 @9100
Steve li T-15 @9200
Erik li T-17 @9300
"""

QC = """
REGISTER QUERY QC AS
SELECT ?X ?Y ?Z
FROM Tweet_Stream [RANGE 10s STEP 1s]
FROM Like_Stream [RANGE 5s STEP 1s]
FROM X-Lab
WHERE {
    GRAPH Tweet_Stream { ?X po ?Z }
    GRAPH X-Lab { ?X fo ?Y }
    GRAPH Like_Stream { ?Y li ?Z }
}
"""

QS = "SELECT ?X WHERE { Logan po ?X . ?X ht sosp17 . Erik li ?X }"


def main():
    engine = WukongSEngine(
        schemas=[StreamSchema("Tweet_Stream", frozenset({"ga"})),
                 StreamSchema("Like_Stream")],
        config=EngineConfig(num_nodes=2, batch_interval_ms=1000))
    loaded = engine.load_static(parse_triples(X_LAB))
    print(f"loaded {loaded} static triples into 2 simulated nodes")

    tweets = StreamSource(engine.schemas["Tweet_Stream"])
    tweets.queue_tuples(parse_timed_tuples(TWEET_STREAM), 0, 1000)
    likes = StreamSource(engine.schemas["Like_Stream"])
    likes.queue_tuples(parse_timed_tuples(LIKE_STREAM), 0, 1000)
    engine.attach_source(tweets)
    engine.attach_source(likes)

    engine.register_continuous(QC)
    print("\ncontinuous query QC registered; running 11 simulated seconds")
    for record in engine.run_until(11_000):
        rows = sorted(
            tuple(engine.strings.entity_name(v) for v in row)
            for row in record.result.rows)
        if rows:
            print(f"  t={record.close_ms / 1000:.0f}s "
                  f"({record.latency_ms:.3f} ms simulated): {rows}")

    print("\none-shot QS over the evolving store:")
    record = engine.oneshot(QS)
    answers = sorted(engine.strings.entity_name(row[0])
                     for row in record.result.rows)
    print(f"  {answers} at snapshot {record.snapshot} "
          f"({record.latency_ms:.3f} ms simulated)")
    print("  (T-15 arrived on the stream and was absorbed as knowledge)")


if __name__ == "__main__":
    main()
