"""Market-feed processing: the paper's OPRA motivation (§1), with online
aggregation.

The paper opens with the Options Price Reporting Authority feed — tens of
millions of quote/trade messages per second — as the motivating case for
sub-millisecond stateful stream querying.  This example models a miniature
market:

* stored data: instruments, their issuing sectors and listing exchanges;
* a trade stream: ``<order, fills, instrument>`` plus ``<order, px, price>``
  tuples;
* continuous queries with FILTER and GROUP BY aggregation: per-sector
  trade counts and average prices over a sliding window, plus a
  price-spike monitor anchored on one instrument;
* one-shot queries over the absorbed trade history.

Run with:  python examples/market_feed.py
"""

from repro.core.engine import EngineConfig, WukongSEngine
from repro.rdf.parser import parse_triples
from repro.rdf.terms import TimedTuple, Triple
from repro.sim.rng import make_rng, zipf_choice
from repro.streams.source import StreamSource
from repro.streams.stream import StreamSchema

SECTORS = {"ACME": "tech", "GLOBEX": "tech", "INITECH": "energy",
           "HOOLI": "tech", "UMBRELLA": "pharma", "STARK": "energy"}
DURATION_MS = 6_000
TRADES_PER_SECOND = 400


def static_market():
    triples = []
    for symbol, sector in SECTORS.items():
        triples.append(Triple(symbol, "inSector", sector))
        triples.append(Triple(symbol, "listedOn", "NYSE"))
    return triples


def trade_stream(seed=2017):
    """Deterministic trades: Zipf-hot symbols, prices drifting by symbol."""
    rng = make_rng(seed, "market")
    symbols = list(SECTORS)
    tuples = []
    base_price = {symbol: 100 + 25 * i for i, symbol in enumerate(symbols)}
    interval = 1000.0 / TRADES_PER_SECOND
    when = 0.0
    order = 0
    while when < DURATION_MS:
        when += interval
        symbol = zipf_choice(rng, symbols)
        price = base_price[symbol] + rng.randrange(-5, 6)
        order_id = f"O{order}"
        order += 1
        ts = int(when)
        tuples.append(TimedTuple(Triple(order_id, "fills", symbol), ts))
        tuples.append(TimedTuple(Triple(order_id, "px", str(price)), ts))
    return tuples


SECTOR_VOLUME = """
REGISTER QUERY sector_volume AS
SELECT ?sector COUNT(?order) AS ?trades AVG(?price) AS ?avg_px
FROM Trades [RANGE 1s STEP 1s]
FROM Market
WHERE {
    GRAPH Trades { ?order fills ?symbol . ?order px ?price }
    GRAPH Market { ?symbol inSector ?sector }
}
GROUP BY ?sector
"""

SPIKE_MONITOR = """
REGISTER QUERY acme_spikes AS
SELECT ?order ?price
FROM Trades [RANGE 1s STEP 1s]
WHERE {
    GRAPH Trades { ?order fills ACME . ?order px ?price .
                   FILTER (?price >= 104) }
}
"""


def main():
    engine = WukongSEngine(
        schemas=[StreamSchema("Trades")],
        config=EngineConfig(num_nodes=4, batch_interval_ms=100))
    engine.load_static(static_market())
    source = StreamSource(engine.schemas["Trades"])
    source.queue_tuples(trade_stream(), 0, 100)
    engine.attach_source(source)

    volume = engine.register_continuous(SECTOR_VOLUME)
    spikes = engine.register_continuous(SPIKE_MONITOR)
    engine.run_until(DURATION_MS)

    print(f"market feed: ~{TRADES_PER_SECOND} trades/s over "
          f"{len(SECTORS)} symbols, {DURATION_MS // 1000}s simulated\n")

    latest = volume.executions[-1]
    print(f"sector volume at t={latest.close_ms / 1000:.0f}s "
          f"({latest.latency_ms:.3f} ms simulated):")
    for row in latest.result.rows:
        sector = engine.strings.entity_name(row[0])
        print(f"  {sector:8s}  trades={row[1]:4d}  avg px={row[2]:.2f}")

    spike_count = sum(len(rec.result.rows) for rec in spikes.executions)
    print(f"\nACME price spikes (px >= 104) flagged: {spike_count} across "
          f"{len(spikes.executions)} windows")

    record = engine.oneshot(
        "SELECT ?symbol COUNT(?order) AS ?n WHERE "
        "{ ?order fills ?symbol } GROUP BY ?symbol")
    print(f"\nall-time trade counts (one-shot over the evolving store, "
          f"{record.latency_ms:.3f} ms):")
    for row in sorted(record.result.rows, key=lambda r: -r[1])[:3]:
        print(f"  {engine.strings.entity_name(row[0]):8s}  {row[1]} trades")


if __name__ == "__main__":
    main()
